package server

import (
	"context"
	"errors"
	"net/http"
	"sync/atomic"

	"krak/internal/engine"
)

// Admission control: every endpoint belongs to a class, and each class
// has a concurrency limiter with a bounded wait queue. Cheap cached
// reads (predict, simulate, experiments, machines, job polls) share the
// light class and a generous limit; sweep, compare, and calibrate — the
// endpoints that can occupy the worker pool for seconds — share the
// heavy class and a tight one. A caller who finds both the slots and the
// queue full is refused immediately with 429 and a Retry-After, which
// under overload is strictly kinder than accepting work the pool cannot
// start: the client learns to back off while queued requests still in
// budget keep their latency. /healthz and /metrics are never limited —
// observability must work best exactly when the server is saturated.
//
// Background jobs take the same heavy limiter but through Wait, which
// blocks past the queue bound instead of being refused: the job store is
// their queue, already bounded, and a submitted job must eventually run.

// Endpoint classes.
const (
	classLight = "light"
	classHeavy = "heavy"
)

// admission holds the per-class limiters and refusal counters.
type admission struct {
	light, heavy *engine.Limiter

	rejectedLight atomic.Int64
	rejectedHeavy atomic.Int64
}

func newAdmission(cfg Config) *admission {
	return &admission{
		light: newClassLimiter(cfg.LightLimit, cfg.LightQueue, defaultLightLimit, defaultLightQueue),
		heavy: newClassLimiter(cfg.HeavyLimit, cfg.HeavyQueue, defaultHeavyLimit, defaultHeavyQueue),
	}
}

// Admission defaults: light admits enough concurrency that cache-hit
// traffic never queues in practice, heavy matches the handful of
// pool-occupying computations worth running at once.
const (
	defaultLightLimit = 256
	defaultLightQueue = 1024
	defaultHeavyLimit = 4
	defaultHeavyQueue = 16
)

// newClassLimiter resolves one class's limiter: 0 means the default,
// negative disables limiting for the class (nil limiter).
func newClassLimiter(limit, queue, defLimit, defQueue int) *engine.Limiter {
	if limit < 0 {
		return nil
	}
	if limit == 0 {
		limit = defLimit
	}
	if queue == 0 {
		queue = defQueue
	} else if queue < 0 {
		queue = 0
	}
	return engine.NewLimiter(limit, queue)
}

func (a *admission) limiter(class string) *engine.Limiter {
	if class == classHeavy {
		return a.heavy
	}
	return a.light
}

func (a *admission) rejected(class string) *atomic.Int64 {
	if class == classHeavy {
		return &a.rejectedHeavy
	}
	return &a.rejectedLight
}

// withAdmission wraps a route with its class's limiter: a request either
// holds a slot for the duration of its handler, waits in the bounded
// queue, or is refused with 429 and a Retry-After hint. A request whose
// context dies while queued gets 503 (the client hung up or timed out —
// retry later, nothing was computed). Heavy handlers additionally run
// under the configured per-request timeout.
func (s *Server) withAdmission(class string, h http.HandlerFunc) http.HandlerFunc {
	lim := s.admission.limiter(class)
	return func(w http.ResponseWriter, r *http.Request) {
		if err := lim.Acquire(r.Context()); err != nil {
			s.admission.rejected(class).Add(1)
			w.Header().Set("Retry-After", "1")
			status := http.StatusServiceUnavailable
			if errors.Is(err, engine.ErrSaturated) {
				status = http.StatusTooManyRequests
			}
			writeError(w, status, err)
			return
		}
		defer lim.Release()
		if class == classHeavy && s.cfg.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(w, r)
	}
}
