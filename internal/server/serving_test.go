package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"krak/pkg/krak"
)

// metricValue extracts one sample's value from a Prometheus text scrape.
// series is the full sample name including any label set, e.g.
// `krak_http_requests_total{endpoint="/v1/predict",code="200"}`.
func metricValue(t *testing.T, scrape, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(scrape, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
				t.Fatalf("unparseable sample %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %s not in scrape:\n%s", series, scrape)
	return 0
}

// TestMetricsEndpoint drives a request sequence and checks the scrape
// reports it: per-endpoint request counters with status codes, latency
// histogram series, and the cache outcome counters.
func TestMetricsEndpoint(t *testing.T) {
	s := quickServer()
	for i := 0; i < 2; i++ { // miss then hit
		if w := post(t, s, "/v1/predict", `{"deck":"small","pes":4}`); w.Code != http.StatusOK {
			t.Fatalf("predict %d: %d %s", i, w.Code, w.Body.String())
		}
	}
	if w := post(t, s, "/v1/predict", `{"deck":"tiny"}`); w.Code != http.StatusBadRequest {
		t.Fatalf("bad deck: %d", w.Code)
	}

	w := get(t, s, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("scrape status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content-type = %q", ct)
	}
	scrape := w.Body.String()
	if got := metricValue(t, scrape, `krak_http_requests_total{endpoint="/v1/predict",code="200"}`); got != 2 {
		t.Errorf("predict 200s = %g, want 2", got)
	}
	if got := metricValue(t, scrape, `krak_http_requests_total{endpoint="/v1/predict",code="400"}`); got != 1 {
		t.Errorf("predict 400s = %g, want 1", got)
	}
	if got := metricValue(t, scrape, "krak_response_cache_hits_total"); got != 1 {
		t.Errorf("cache hits = %g, want 1", got)
	}
	if got := metricValue(t, scrape, "krak_response_cache_misses_total"); got != 1 {
		t.Errorf("cache misses = %g, want 1", got)
	}
	if got := metricValue(t, scrape, `krak_http_request_seconds_count{endpoint="/v1/predict"}`); got != 3 {
		t.Errorf("latency count = %g, want 3", got)
	}
	if got := metricValue(t, scrape, `krak_http_request_seconds_bucket{endpoint="/v1/predict",le="+Inf"}`); got != 3 {
		t.Errorf("latency +Inf bucket = %g, want 3", got)
	}
	// The HELP/TYPE headers must be present for every family the scrape
	// mentions (spot-check the histogram, the trickiest type).
	if !strings.Contains(scrape, "# TYPE krak_http_request_seconds histogram") {
		t.Error("histogram TYPE header missing")
	}
}

// TestHealthzAgreesWithMetrics is the two-views-one-registry test: every
// counter /healthz reports must equal what /metrics exposes for the
// corresponding family at the same moment.
func TestHealthzAgreesWithMetrics(t *testing.T) {
	s := quickServer()
	post(t, s, "/v1/predict", `{"deck":"small","pes":4}`)
	post(t, s, "/v1/predict", `{"deck":"small","pes":4}`)
	post(t, s, "/v1/simulate", `{"deck":"small","pes":4,"iterations":1}`)

	var h map[string]any
	if err := json.Unmarshal(get(t, s, "/healthz").Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	scrape := get(t, s, "/metrics").Body.String()
	pairs := map[string]string{
		"cache_hits":         "krak_response_cache_hits_total",
		"cache_misses":       "krak_response_cache_misses_total",
		"cache_coalesced":    "krak_response_cache_coalesced_total",
		"cache_len":          "krak_response_cache_entries",
		"cache_cap":          "krak_response_cache_capacity",
		"machines":           "krak_machines",
		"batches":            "krak_batches_total",
		"batched_jobs":       "krak_batched_jobs_total",
		"parallelism":        "krak_parallelism",
		"partition_computes": "krak_partition_computes_total",
	}
	for field, family := range pairs {
		want, ok := h[field].(float64)
		if !ok {
			t.Errorf("healthz missing %q", field)
			continue
		}
		if got := metricValue(t, scrape, family); got != want {
			t.Errorf("healthz %s = %g but metrics %s = %g", field, want, family, got)
		}
	}
}

// TestCacheOutcomeCountsPinned is the regression test for the cache-hit
// miscount bug: requests coalesced onto an in-flight fill used to count
// as cache hits, inflating the hit rate under bursts. The three outcomes
// must be reported distinctly: the burst below is 1 miss plus n-1
// coalesced (zero hits — nothing was in the finished cache), and only
// the repeat afterwards is a hit.
func TestCacheOutcomeCountsPinned(t *testing.T) {
	// A wide batch window keeps the first request's fill in flight while
	// the rest of the burst arrives.
	s := quickServer(func(c *Config) { c.BatchWindow = 300 * time.Millisecond })
	const n = 6
	var wg sync.WaitGroup
	results := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = post(t, s, "/v1/predict", `{"deck":"small","pes":4}`).Code
		}(i)
		if i == 0 {
			// Give the first request time to open the fill, so the rest
			// deterministically coalesce instead of racing it.
			time.Sleep(60 * time.Millisecond)
		}
	}
	wg.Wait()
	for i, code := range results {
		if code != http.StatusOK {
			t.Fatalf("burst request %d: status %d", i, code)
		}
	}
	if m, c, h := s.cacheMisses.Load(), s.cacheCoalesced.Load(), s.cacheHits.Load(); m != 1 || c != n-1 || h != 0 {
		t.Fatalf("burst counts: misses=%d coalesced=%d hits=%d, want 1/%d/0", m, c, h, n-1)
	}
	post(t, s, "/v1/predict", `{"deck":"small","pes":4}`)
	if m, c, h := s.cacheMisses.Load(), s.cacheCoalesced.Load(), s.cacheHits.Load(); m != 1 || c != n-1 || h != 1 {
		t.Fatalf("after repeat: misses=%d coalesced=%d hits=%d, want 1/%d/1", m, c, h, n-1)
	}
}

// TestAdmissionSaturated429 saturates the heavy class deterministically
// (the test holds its one slot directly; no queue) and checks the next
// sweep is refused with 429 and a Retry-After, then served once the slot
// frees.
func TestAdmissionSaturated429(t *testing.T) {
	s := quickServer(func(c *Config) {
		c.HeavyLimit = 1
		c.HeavyQueue = -1
	})
	if err := s.admission.heavy.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	w := post(t, s, "/v1/sweep", `{"decks":["small"],"pes":[4]}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated sweep: status %d, want 429: %s", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var env map[string]string
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil || env["error"] == "" {
		t.Errorf("missing error envelope: %s", w.Body.String())
	}
	if got := s.admission.rejectedHeavy.Load(); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}
	// Light traffic is not collateral damage: cached reads still serve.
	if w := post(t, s, "/v1/predict", `{"deck":"small","pes":4}`); w.Code != http.StatusOK {
		t.Fatalf("light request during heavy saturation: %d", w.Code)
	}
	s.admission.heavy.Release()
	if w := post(t, s, "/v1/sweep", `{"decks":["small"],"pes":[4]}`); w.Code != http.StatusOK {
		t.Fatalf("sweep after release: status %d: %s", w.Code, w.Body.String())
	}
}

// TestJobsLifecycle is the async-jobs integration test: submit a sweep as
// a job, poll it to completion, and check the stored result is
// byte-identical to the synchronous endpoint's response modulo the
// timing fields that legitimately vary run to run.
func TestJobsLifecycle(t *testing.T) {
	s := quickServer()
	const body = `{"op":"predict","decks":["small"],"pes":[4,8]}`

	sync := post(t, s, "/v1/sweep", body)
	if sync.Code != http.StatusOK {
		t.Fatalf("sync sweep: %d %s", sync.Code, sync.Body.String())
	}

	sub := post(t, s, "/v1/jobs", body)
	if sub.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202: %s", sub.Code, sub.Body.String())
	}
	var js krak.JobStatus
	if err := json.Unmarshal(sub.Body.Bytes(), &js); err != nil {
		t.Fatal(err)
	}
	if js.Schema != krak.JobSchema || js.ID == "" {
		t.Fatalf("submit body: %+v", js)
	}
	if loc := sub.Header().Get("Location"); loc != "/v1/jobs/"+js.ID {
		t.Errorf("Location = %q", loc)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		w := get(t, s, "/v1/jobs/"+js.ID)
		if w.Code != http.StatusOK {
			t.Fatalf("poll: status %d: %s", w.Code, w.Body.String())
		}
		if err := json.Unmarshal(w.Body.Bytes(), &js); err != nil {
			t.Fatal(err)
		}
		if js.Status == krak.JobDone {
			break
		}
		if js.Status == krak.JobFailed {
			t.Fatalf("job failed: %s", js.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", js.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}

	res := get(t, s, "/v1/jobs/"+js.ID+"/result")
	if res.Code != http.StatusOK {
		t.Fatalf("result: status %d: %s", res.Code, res.Body.String())
	}
	if got, want := stripSweepTimings(t, res.Body.Bytes()), stripSweepTimings(t, sync.Body.Bytes()); got != want {
		t.Errorf("job result differs from sync sweep beyond timing fields:\n--- job ---\n%s\n--- sync ---\n%s", got, want)
	}

	if w := get(t, s, "/v1/jobs/job-999999"); w.Code != http.StatusNotFound {
		t.Errorf("unknown job status: %d, want 404", w.Code)
	}
	if w := get(t, s, "/v1/jobs/job-999999/result"); w.Code != http.StatusNotFound {
		t.Errorf("unknown job result: %d, want 404", w.Code)
	}
}

// stripSweepTimings decodes a SweepResult and re-renders it with every
// run-varying timing field zeroed, leaving only the deterministic bytes.
func stripSweepTimings(t *testing.T, b []byte) string {
	t.Helper()
	var sr krak.SweepResult
	if err := json.Unmarshal(b, &sr); err != nil {
		t.Fatalf("decoding sweep: %v", err)
	}
	sr.WallSeconds, sr.WorkSeconds = 0, 0
	for i := range sr.Points {
		sr.Points[i].Seconds = 0
	}
	out, err := json.MarshalIndent(&sr, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestJobSubmitValidatesSynchronously checks a bad request dies at
// submission with 400, not inside a job the client would have to poll.
func TestJobSubmitValidatesSynchronously(t *testing.T) {
	s := quickServer()
	if w := post(t, s, "/v1/jobs", `{"decks":["not-a-deck"]}`); w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", w.Code, w.Body.String())
	}
	if n := s.jobs.len(); n != 0 {
		t.Fatalf("invalid submission created %d jobs", n)
	}
}

// TestJobStoreBounds drives the store's cap and TTL directly with
// crafted clocks: expired finished jobs age out, the oldest finished job
// is evicted at the cap, and a store full of unfinished jobs refuses.
func TestJobStoreBounds(t *testing.T) {
	t0 := time.Unix(1000, 0)
	st := newJobStore(2, time.Minute)

	a, err := st.add(t0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := st.add(t0)
	if err != nil {
		t.Fatal(err)
	}
	// Full of unfinished jobs: the bound refuses.
	if _, err := st.add(t0); !errors.Is(err, errJobsFull) {
		t.Fatalf("add at cap: %v, want errJobsFull", err)
	}
	// Finish a; at the cap the oldest finished job is evicted to admit.
	st.finish(a, []byte("{}"), nil, t0.Add(time.Second))
	c, err := st.add(t0.Add(2 * time.Second))
	if err != nil {
		t.Fatalf("add after finish: %v", err)
	}
	if _, ok := st.get(a.id, t0.Add(2*time.Second)); ok {
		t.Error("evicted job still resolvable")
	}
	if st.evicted.Load() != 1 {
		t.Errorf("evicted = %d, want 1", st.evicted.Load())
	}
	// TTL: a finished job expires out of lookups after a minute.
	st.finish(c, []byte("{}"), nil, t0.Add(3*time.Second))
	if _, ok := st.get(c.id, t0.Add(10*time.Second)); !ok {
		t.Fatal("fresh finished job not resolvable")
	}
	if _, ok := st.get(c.id, t0.Add(2*time.Minute)); ok {
		t.Error("expired job still resolvable")
	}
	// b is still live (never finished): unaffected by the sweep above.
	if _, ok := st.get(b.id, t0.Add(2*time.Minute)); !ok {
		t.Error("unfinished job was evicted")
	}
}

// TestRestartServesFromDiskWithoutRecompute is the persistence
// acceptance test: a server over a warm cache directory — a "restart" —
// serves a previously computed /v1/predict byte-identically without
// recomputing partitions, verified through the metrics counters.
func TestRestartServesFromDiskWithoutRecompute(t *testing.T) {
	dir := t.TempDir()
	s1 := quickServer(func(c *Config) { c.CacheDir = dir })
	// The mesh-specific model partitions the deck (the default
	// general-homo model is partition-free), which is what gives this
	// test its partition counters.
	const body = `{"deck":"small","pes":8,"model":"mesh-specific"}`
	first := post(t, s1, "/v1/predict", body)
	if first.Code != http.StatusOK {
		t.Fatalf("cold predict: %d %s", first.Code, first.Body.String())
	}
	scrape1 := get(t, s1, "/metrics").Body.String()
	if got := metricValue(t, scrape1, "krak_partition_computes_total"); got == 0 {
		t.Fatal("cold server computed no partitions — test premise broken")
	}
	if got := metricValue(t, scrape1, `krak_disk_cache_writes_total{tier="response"}`); got == 0 {
		t.Fatal("cold server persisted no responses")
	}

	// "Kill" s1 (drop it) and start a fresh server over the same dir:
	// fresh in-memory caches, warm disk.
	s2 := quickServer(func(c *Config) { c.CacheDir = dir })
	second := post(t, s2, "/v1/predict", body)
	if second.Code != http.StatusOK {
		t.Fatalf("restart predict: %d %s", second.Code, second.Body.String())
	}
	if second.Body.String() != first.Body.String() {
		t.Error("restarted server's response is not byte-identical")
	}
	scrape2 := get(t, s2, "/metrics").Body.String()
	if got := metricValue(t, scrape2, "krak_partition_computes_total"); got != 0 {
		t.Errorf("restarted server computed %g partitions, want 0", got)
	}
	if got := metricValue(t, scrape2, `krak_disk_cache_hits_total{tier="response"}`); got != 1 {
		t.Errorf("response disk hits = %g, want 1", got)
	}

	// The vector tier stands on its own: a sweep (responses never cached)
	// over the same scenario must pull its partition from disk too.
	if w := post(t, s2, "/v1/sweep", `{"decks":["small"],"pes":[8],"model":"mesh-specific"}`); w.Code != http.StatusOK {
		t.Fatalf("restart sweep: %d %s", w.Code, w.Body.String())
	}
	scrape3 := get(t, s2, "/metrics").Body.String()
	if got := metricValue(t, scrape3, "krak_partition_computes_total"); got != 0 {
		t.Errorf("sweep after restart computed %g partitions, want 0 (vector tier should have served)", got)
	}
	if got := metricValue(t, scrape3, `krak_disk_cache_hits_total{tier="artifact"}`); got == 0 {
		t.Error("sweep after restart never hit the artifact disk tier")
	}
}

// TestMachineCapConcurrent is the regression test for the machine-cap
// TOCTOU: 128 distinct specs racing through machineFor used to each see
// Len() below the cap before any inserted, overshooting it. The atomic
// GetBounded admits exactly maxMachines and refuses the rest.
func TestMachineCapConcurrent(t *testing.T) {
	s := quickServer()
	const n = 2 * maxMachines
	var wg sync.WaitGroup
	var admitted, refused, unexpected sync.Map
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			ms := krak.MachineSpec{Seed: uint64(i + 1), Quick: true}.Normalized()
			switch _, err := s.machineFor(ms); {
			case err == nil:
				admitted.Store(i, true)
			case errors.Is(err, errTooManyMachines):
				refused.Store(i, true)
			default:
				unexpected.Store(i, err)
			}
		}(i)
	}
	close(start)
	wg.Wait()
	unexpected.Range(func(k, v any) bool {
		t.Errorf("spec %v: unexpected error %v", k, v)
		return true
	})
	count := func(m *sync.Map) (n int) {
		m.Range(func(any, any) bool { n++; return true })
		return n
	}
	if got := s.machines.Len(); got > maxMachines {
		t.Fatalf("machine cache overshot the cap: %d > %d", got, maxMachines)
	}
	if a, r := count(&admitted), count(&refused); a != maxMachines || r != n-maxMachines {
		t.Errorf("admitted=%d refused=%d, want %d/%d", a, r, maxMachines, n-maxMachines)
	}
}
