package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"krak/pkg/krak"
)

const calibrateBody = `{"dataset":"dataset srv\nobs small 2 0.052\nobs small 4 0.031\nobs small 8 0.021\nobs small 16 0.015\n","folds":2}`

// TestCalibrateByteIdenticalToCLI extends the serving contract to the
// calibration endpoint: POST /v1/calibrate must return exactly the bytes
// `krak calibrate -data ... -quick -folds 2 --json` prints for the same
// dataset and machine.
func TestCalibrateByteIdenticalToCLI(t *testing.T) {
	// The CLI path: quick machine, default feature model, emit()'s
	// MarshalIndent plus trailing newline.
	m, err := krak.NewMachine(krak.WithQuick())
	if err != nil {
		t.Fatal(err)
	}
	sc, err := krak.NewScenario(krak.WithModel(krak.GeneralHomogeneous))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := krak.NewSession(m, sc)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := krak.ParseDataset([]byte("dataset srv\nobs small 2 0.052\nobs small 4 0.031\nobs small 8 0.021\nobs small 16 0.015\n"))
	if err != nil {
		t.Fatal(err)
	}
	cr, err := sess.Calibrate(context.Background(), ds, krak.CalibrateOptions{Folds: 2})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := json.MarshalIndent(cr, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	cliBody := string(cli) + "\n"

	s := quickServer()
	w := post(t, s, "/v1/calibrate", calibrateBody)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if w.Body.String() != cliBody {
		t.Errorf("server calibration is not byte-identical to the CLI\n--- server ---\n%s\n--- cli ---\n%s",
			w.Body.String(), cliBody)
	}

	// The response decodes as a schema-stamped CalibrationResult.
	var back krak.CalibrationResult
	if err := json.Unmarshal(w.Body.Bytes(), &back); err != nil {
		t.Fatalf("response does not decode: %v", err)
	}
	if back.Observations != 4 || back.CV == nil || back.CV.Folds != 2 {
		t.Errorf("decoded calibration drifted: %+v", back)
	}
}

// TestCalibrateCached asserts calibrations enter the rendered-response
// LRU: a repeated request is a byte-identical cache hit.
func TestCalibrateCached(t *testing.T) {
	s := quickServer()
	w1 := post(t, s, "/v1/calibrate", calibrateBody)
	if w1.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w1.Code, w1.Body.String())
	}
	hits := s.cacheHits.Load()
	w2 := post(t, s, "/v1/calibrate", calibrateBody)
	if w2.Code != http.StatusOK || w2.Body.String() != w1.Body.String() {
		t.Error("repeat calibration differs")
	}
	if s.cacheHits.Load() != hits+1 {
		t.Errorf("repeat calibration did not hit the cache (hits %d -> %d)", hits, s.cacheHits.Load())
	}
}

// TestCalibrateSynthEndpoint runs the self-measuring path: the server
// generates the dataset from the request's machine and fits it.
func TestCalibrateSynthEndpoint(t *testing.T) {
	s := quickServer()
	// A single-segment network keeps the analytic model exactly linear in
	// (latency, bandwidth), so the baseline-rate machine must fit with a
	// compute scale of exactly 1 (multi-segment presets like qsnet are
	// only approximately a single (lat, bw) pair).
	w := post(t, s, "/v1/calibrate",
		`{"synth":{"op":"predict","decks":["small"],"pes":[2,4,8]},"model":"general-het",`+
			`"machine":{"file":"network flat\nsegment 0 10 300\n"}}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var cr krak.CalibrationResult
	if err := json.Unmarshal(w.Body.Bytes(), &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Observations != 3 || cr.Dataset != "synth-predict" || cr.Model != "general-het" {
		t.Errorf("synth calibration drifted: %+v", cr)
	}
	if cr.Params.ComputeScale < 0.999 || cr.Params.ComputeScale > 1.001 {
		t.Errorf("baseline compute scale %.6f", cr.Params.ComputeScale)
	}
}

// TestCalibrateErrors pins the endpoint's error statuses.
func TestCalibrateErrors(t *testing.T) {
	s := quickServer()
	cases := []struct {
		name, body string
		want       int
	}{
		{"no source", `{}`, http.StatusBadRequest},
		{"two sources", `{"dataset":"obs small 2 1\n","synth":{}}`, http.StatusBadRequest},
		{"malformed dataset", `{"dataset":"obs small 2 never\n"}`, http.StatusBadRequest},
		{"unknown deck", `{"dataset":"obs mega 2 1\n"}`, http.StatusBadRequest},
		{"mesh-specific model", `{"dataset":"obs small 2 1\n","model":"mesh-specific"}`, http.StatusBadRequest},
		{"unknown model", `{"dataset":"obs small 2 1\n","model":"psychic"}`, http.StatusBadRequest},
		{"bad folds", `{"dataset":"obs small 2 1\n","folds":9}`, http.StatusBadRequest},
		{"bad machine file", `{"dataset":"obs small 2 1\n","machine":{"file":"warp 9\n"}}`, http.StatusBadRequest},
		{"unknown field", `{"observations":[],"bogus":1}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := post(t, s, "/v1/calibrate", tc.body)
			if w.Code != tc.want {
				t.Errorf("status %d, want %d: %s", w.Code, tc.want, w.Body.String())
			}
			if !strings.Contains(w.Body.String(), `"error"`) {
				t.Errorf("no error envelope: %s", w.Body.String())
			}
		})
	}
}

// TestMachineFileSpecInWireRequests covers the fingerprint identity:
// a machine arriving as an embedded machine file and the equivalent
// explicit spec must share one cached machine and produce identical
// predictions.
func TestMachineFileSpecInWireRequests(t *testing.T) {
	s := quickServer()
	explicit := post(t, s, "/v1/predict",
		`{"deck":"small","pes":4,"machine":{"interconnect":"gige","seed":3}}`)
	if explicit.Code != http.StatusOK {
		t.Fatalf("explicit spec: %d %s", explicit.Code, explicit.Body.String())
	}
	viaFile := post(t, s, "/v1/predict",
		`{"deck":"small","pes":4,"machine":{"file":"interconnect gige\nseed 3\n"}}`)
	if viaFile.Code != http.StatusOK {
		t.Fatalf("file spec: %d %s", viaFile.Code, viaFile.Body.String())
	}
	if explicit.Body.String() != viaFile.Body.String() {
		t.Error("file-defined machine predicts differently from the equivalent explicit spec")
	}
	if got := s.machines.Len(); got != 1 {
		t.Errorf("machines = %d, want 1 (fingerprint should unify the two spellings)", got)
	}

	// A custom network is a distinct fingerprint and serves fine.
	custom := post(t, s, "/v1/predict",
		`{"deck":"small","pes":4,"machine":{"file":"network lab\nsegment 0 20 200\n"}}`)
	if custom.Code != http.StatusOK {
		t.Fatalf("custom network: %d %s", custom.Code, custom.Body.String())
	}
	if custom.Body.String() == viaFile.Body.String() {
		t.Error("custom network served the preset's prediction")
	}
	if got := s.machines.Len(); got != 2 {
		t.Errorf("machines = %d, want 2", got)
	}
}

// TestCalibratedMachineServesPredictions closes the loop at the serving
// layer: calibrate, take the fitted machine spec from the response, and
// predict on it.
func TestCalibratedMachineServesPredictions(t *testing.T) {
	s := quickServer()
	w := post(t, s, "/v1/calibrate", calibrateBody)
	if w.Code != http.StatusOK {
		t.Fatalf("calibrate: %d %s", w.Code, w.Body.String())
	}
	var cr krak.CalibrationResult
	if err := json.Unmarshal(w.Body.Bytes(), &cr); err != nil {
		t.Fatal(err)
	}
	req, err := json.Marshal(map[string]any{"deck": "small", "pes": 8, "machine": cr.Fitted})
	if err != nil {
		t.Fatal(err)
	}
	before := s.machines.Len()
	p := post(t, s, "/v1/predict", string(req))
	if p.Code != http.StatusOK {
		t.Fatalf("predict on fitted machine: %d %s", p.Code, p.Body.String())
	}
	if s.machines.Len() != before+1 {
		t.Errorf("fitted machine did not enter the machine cache (%d -> %d)", before, s.machines.Len())
	}
	var res krak.Result
	if err := json.Unmarshal(p.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.TotalSeconds <= 0 || res.Network != "calibrated" {
		t.Errorf("fitted-machine prediction drifted: total %g network %q", res.TotalSeconds, res.Network)
	}
}
