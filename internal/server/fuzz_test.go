package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"krak/pkg/krak"
)

// FuzzDecodeRequest asserts the no-panic contract of the server's JSON
// request decoding and validation: any body POSTed at the three wire
// types either decodes into a valid request or is rejected with an
// error — never a panic. Validation goes all the way through
// Scenario()/Grid() construction (the full pre-compute path a request
// travels before any work is scheduled). Checked-in seeds live in
// testdata/fuzz/FuzzDecodeRequest; run with
//
//	go test -fuzz FuzzDecodeRequest ./internal/server
func FuzzDecodeRequest(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"deck":"small","pes":16}`,
		`{"deck":"medium","pes":128,"model":"mesh-specific","machine":{"interconnect":"gige","seed":7,"quick":true}}`,
		`{"pes":-1}`,
		`{"pes":999999999999999999999}`,
		`{"deck":"large","machine":{"repeats":-3,"serialize_sends":true}}`,
		`{"iterations":2,"partitioner":"rcb"}`,
		`{"op":"simulate","decks":["small","medium"],"pes":[4,8],"iterations":1}`,
		`{"decks":[],"pes":[]}`,
		`{"decks":["small"],"pes":[0]}`,
		`{"unknown_field":true}`,
		`{"deck":4}`,
		`[1,2,3]`,
		`null`,
		`{} {}`,
		"\x00\xff",
		strings.Repeat(`{"deck":`, 100),
		`{"machine":{"file":"interconnect gige\nseed 3\n"}}`,
		`{"machine":{"network":{"segments":[{"min_bytes":0,"latency_us":5,"bandwidth_mbs":100}]},"compute_scale":1.5}}`,
		`{"machine":{"file":"network x\nsegment 64 1 1\n"}}`,
		`{"dataset":"obs small 2 0.05\nobs small 4 0.03\n","folds":2}`,
		`{"synth":{"op":"predict","decks":["small"],"pes":[2,4]}}`,
		`{"observations":[{"deck":"small","pes":2,"seconds":-1}]}`,
		`{"dataset":"obs small 2 0.05\n","form":"piecewise","folds":3}`,
		`{"dataset":"obs small 2 0.05\n","form":"no-such-form"}`,
		`{"fingerprint":"abc123","dataset":"obs small 2 0.05\n","folds":2,"form":"auto"}`,
		`{"fingerprint":"","observations":[{"deck":"small","pes":4,"seconds":0.1}],"form":"loglog"}`,
		`{"fingerprint":"abc","dataset":"obs a 2 1\n","observations":[{"deck":"a","pes":2,"seconds":1}]}`,
		`{"result":{"schema":"krak.calibration/v1","observations":2,"model":"general-homo","form":"linear","fitted_fingerprint":"abc"},"dataset":"obs small 2 0.05\n"}`,
		`{"result":{"schema":"krak.wrong/v9"}}`,
		`{"result":null}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		// Decode through the real handler plumbing (MaxBytesReader,
		// DisallowUnknownFields, trailing-data check), then validate:
		// everything a request passes through before compute.
		var pr krak.PredictRequest
		if decodeBytes(t, body, &pr) == nil {
			if _, err := pr.Scenario(); err == nil {
				n := pr.Normalized()
				if n.Deck == "" || n.PEs <= 0 {
					t.Fatalf("valid predict request normalized badly: %+v", n)
				}
				// Specs without an embedded file or custom network
				// normalize to an explicit interconnect; file-bearing specs
				// stay raw until Resolved, and a custom network supersedes
				// (and clears) the preset.
				if n.Machine.File == "" && n.Machine.Network == nil && n.Machine.Interconnect == "" {
					t.Fatalf("valid predict request normalized badly: %+v", n)
				}
			}
			// The machine-resolution path a request travels in a handler:
			// either a typed error, or a spec whose normalization is
			// idempotent — renormalizing must not move the fingerprint the
			// serving caches key on.
			if ms, err := pr.Machine.Resolved(); err == nil {
				norm := ms.Normalized()
				if norm.Normalized().Fingerprint() != norm.Fingerprint() {
					t.Fatalf("normalization is not idempotent for %+v", ms)
				}
			}
		}
		var sr krak.SimulateRequest
		if decodeBytes(t, body, &sr) == nil {
			sr.Scenario()
		}
		var wr krak.SweepRequest
		if decodeBytes(t, body, &wr) == nil {
			if _, grid, err := wr.Grid(); err == nil {
				if len(grid) == 0 || len(grid) > krak.MaxSweepPoints {
					t.Fatalf("valid sweep request built %d points", len(grid))
				}
			}
		}
		var cr krak.CalibrateRequest
		if decodeBytes(t, body, &cr) == nil {
			// Validation without compute: normalization, scenario
			// construction, and machine resolution must never panic.
			cr.Normalized()
			cr.Scenario()
			cr.Machine.Resolved()
		}
		var ar krak.AppendRequest
		if decodeBytes(t, body, &ar) == nil {
			ar.Normalized()
			ar.Scenario()
			// Fresh either parses into a bounded dataset or rejects with
			// ErrCalibration; both-sources and no-source bodies must hit
			// the exactly-one rule, not a panic.
			if ds, err := ar.Fresh(); err == nil && (ds == nil || len(ds.Observations) == 0) {
				t.Fatalf("append request accepted an empty fresh dataset: %+v", ar)
			}
			ar.Machine.Resolved()
		}
		var rr krak.RegisterMachineRequest
		if decodeBytes(t, body, &rr) == nil && rr.Result != nil {
			// Registered results are re-rendered into history bodies; the
			// marshal round trip must never panic, and the schema stamp
			// must survive it.
			if b, err := rr.Result.MarshalJSON(); err == nil {
				var back krak.CalibrationResult
				if err := back.UnmarshalJSON(b); err != nil {
					t.Fatalf("registered result does not round-trip: %v", err)
				}
			}
		}
	})
}

// decodeBytes runs the handler's decode path against a raw body.
func decodeBytes(t *testing.T, body []byte, v any) error {
	t.Helper()
	r := httptest.NewRequest(http.MethodPost, "/", strings.NewReader(string(body)))
	return decode(httptest.NewRecorder(), r, v)
}
