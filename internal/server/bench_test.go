package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// benchServer builds a quick server and primes the machine's artifact
// caches (deck, calibration, a first partition) so the benchmarks
// measure the serving layer, not the one-time machine warm-up.
func benchServer(b *testing.B, cacheSize int) *Server {
	b.Helper()
	s, err := New(Config{Quick: true, CacheSize: cacheSize})
	if err != nil {
		b.Fatal(err)
	}
	w := benchPost(s, `{"deck":"small","pes":2,"model":"mesh-specific"}`)
	if w.Code != http.StatusOK {
		b.Fatalf("warm-up failed: %d %s", w.Code, w.Body.String())
	}
	return s
}

func benchPost(s *Server, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

// BenchmarkServePredict measures the predict endpoint's two serving
// regimes. "cold" means a response-cache miss against fully warm
// artifact caches: the setup evaluates every grid point once so decks,
// calibrations, and partitions are all memoized, then the measured loop
// cycles through more distinct requests than the LRU holds (sequential
// cycling of 64 keys through 16 slots misses forever), so every request
// pays scenario construction, batch dispatch (including the micro-batch
// window an unaccompanied request waits out), model evaluation, and
// rendering — the serving layer's own cost, not the partitioner's.
// (Before PR 5 the warm-up only primed one point; at the archived
// -benchtime 1x that was invisible because the single measured request
// was that point, but any longer run silently folded fresh partitions
// into "cold".) "warm" repeats one request, so after the first hit
// everything is served from the rendered-response LRU. The gap between
// the two is the cache's value per request — the acceptance bar is warm
// ≥ 10x faster than cold.
func BenchmarkServePredict(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		s := benchServer(b, 16) // 64 distinct keys vs 16 slots: misses forever
		for i := 0; i < 64; i++ {
			body := fmt.Sprintf(`{"deck":"small","pes":%d,"model":"mesh-specific"}`, 2+i)
			if w := benchPost(s, body); w.Code != http.StatusOK {
				b.Fatalf("artifact warm-up %d: status %d: %s", i, w.Code, w.Body.String())
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			body := fmt.Sprintf(`{"deck":"small","pes":%d,"model":"mesh-specific"}`, 2+i%64)
			if w := benchPost(s, body); w.Code != http.StatusOK {
				b.Fatalf("status %d: %s", w.Code, w.Body.String())
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		s := benchServer(b, 16)
		body := `{"deck":"small","pes":8,"model":"mesh-specific"}`
		if w := benchPost(s, body); w.Code != http.StatusOK { // fill the cache
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if w := benchPost(s, body); w.Code != http.StatusOK {
				b.Fatalf("status %d", w.Code)
			}
		}
	})
}

// BenchmarkServeSweep measures the uncached sweep endpoint: every
// request fans its grid out over the machine's worker pool against warm
// artifact caches.
func BenchmarkServeSweep(b *testing.B) {
	s := benchServer(b, 16)
	body := `{"op":"predict","decks":["small"],"pes":[4,8,16,32]}`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(body))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
}
