// Repository benchmark harness: one benchmark per paper table and figure
// (each regenerates the artifact through the experiments package in quick
// mode), the ablation benches docs/ARCHITECTURE.md calls out,
// microbenchmarks of the load-bearing kernels (partitioner, simulator,
// model, hydro step), and the serial-vs-parallel sweep pair that measures
// the engine's speedup (BenchmarkSweepSerial / BenchmarkSweepParallel).
//
// Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benches are regeneration harnesses, not microbenchmarks:
// per-op times report how long regenerating the table/figure takes with
// memoized decks/partitions warm after the first iteration. The sweep
// benches instead build a fresh machine (cold caches) every iteration, so
// they measure the full concurrent execution path.
package krak

import (
	"context"
	"runtime"
	"testing"

	"krak/internal/cluster"
	"krak/internal/compute"
	"krak/internal/core"
	"krak/internal/experiments"
	"krak/internal/hydro"
	"krak/internal/mesh"
	"krak/internal/netmodel"
	"krak/internal/partition"
	api "krak/pkg/krak"
)

// benchExperiment runs one experiment repeatedly against a shared quick
// environment.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := experiments.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	env := experiments.NewQuickEnv()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(ctx, env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1PhaseTable(b *testing.B)       { benchExperiment(b, "table1") }
func BenchmarkTable2MaterialRatios(b *testing.B)   { benchExperiment(b, "table2") }
func BenchmarkTable3BoundaryExchange(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTable4Collectives(b *testing.B)      { benchExperiment(b, "table4") }
func BenchmarkTable5MeshSpecific(b *testing.B)     { benchExperiment(b, "table5") }
func BenchmarkTable6General(b *testing.B)          { benchExperiment(b, "table6") }
func BenchmarkFigure1Partitioning(b *testing.B)    { benchExperiment(b, "figure1") }
func BenchmarkFigure2PhaseTimes(b *testing.B)      { benchExperiment(b, "figure2") }
func BenchmarkFigure3CostCurves(b *testing.B)      { benchExperiment(b, "figure3") }
func BenchmarkFigure4Boundary(b *testing.B)        { benchExperiment(b, "figure4") }
func BenchmarkFigure5Scaling(b *testing.B)         { benchExperiment(b, "figure5") }

// Ablation benches (design choices called out in docs/ARCHITECTURE.md).

func BenchmarkAblationPartitioner(b *testing.B) { benchExperiment(b, "ablation-partitioner") }
func BenchmarkAblationOverlap(b *testing.B)     { benchExperiment(b, "ablation-overlap") }
func BenchmarkAblationKnee(b *testing.B)        { benchExperiment(b, "ablation-knee") }
func BenchmarkAblationCombine(b *testing.B)     { benchExperiment(b, "ablation-combine") }
func BenchmarkAblationNetwork(b *testing.B)     { benchExperiment(b, "ablation-network") }

// Sweep benches: the same (deck, PE-count) grid through Session.Sweep,
// serial vs parallel. Both benches are cold by construction, and "cold"
// means exactly this: every iteration builds a fresh Machine whose
// artifact store (decks, graphs, partitions — internal/artifacts) starts
// empty, so the deck is built once per iteration behind its single-flight
// cache and every (deck, p) partition and simulation is computed from
// scratch. Nothing is shared between the two benches or across
// iterations: the artifact store is per-Machine unless explicitly shared
// with WithSharedArtifacts, and the repo holds no process-global artifact
// state.
//
// The parallel bench's per-op time under the serial bench's is the
// engine's realized speedup (≥2x expected on a 4-core runner). On a
// single hardware thread the honest expectation for the ratio is ~1.0:
// the points are pure CPU work, so no pool width can compress their wall
// time.

// benchSweep runs the simulate grid at the given worker-pool width.
func benchSweep(b *testing.B, parallel int) {
	b.Helper()
	pes := []int{8, 16, 24, 32, 48, 64, 96, 128}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := api.NewMachine(api.WithQuick(), api.WithParallelism(parallel))
		if err != nil {
			b.Fatal(err)
		}
		grid := make([]*api.Scenario, 0, len(pes))
		for _, pe := range pes {
			sc, err := api.NewScenario(api.WithDeck("medium"), api.WithPE(pe))
			if err != nil {
				b.Fatal(err)
			}
			grid = append(grid, sc)
		}
		base, err := api.NewScenario()
		if err != nil {
			b.Fatal(err)
		}
		s, err := api.NewSession(m, base)
		if err != nil {
			b.Fatal(err)
		}
		sr, err := s.Sweep(ctx, api.SweepSimulate, grid)
		if err != nil {
			b.Fatal(err)
		}
		if len(sr.Points) != len(pes) {
			b.Fatalf("sweep returned %d points, want %d", len(sr.Points), len(pes))
		}
	}
}

func BenchmarkSweepSerial(b *testing.B) { benchSweep(b, 1) }

// BenchmarkSweepParallel runs the pool as wide as the hardware allows but
// never narrower than 4 workers: on a single-core runner GOMAXPROCS(0) is
// 1, which would silently turn this into a second serial bench — exactly
// what BENCH_PR4.json recorded (its parallel==serial numbers were measured
// at pool width 1 on a 1-CPU runner, not evidence of an engine convoy).
// Pinning a minimum width keeps the benchmark measuring the engine's
// scheduling path; the wall-clock ratio to SweepSerial is only meaningful
// on runners with >1 hardware thread.
func BenchmarkSweepParallel(b *testing.B) {
	w := runtime.GOMAXPROCS(0)
	if w < 4 {
		w = 4
	}
	benchSweep(b, w)
}

// Microbenchmarks of the load-bearing kernels.

func benchDeckSummary(b *testing.B, p int) *mesh.PartitionSummary {
	b.Helper()
	d, err := mesh.BuildLayeredDeck(160, 80) // 12,800 cells
	if err != nil {
		b.Fatal(err)
	}
	g := partition.FromMesh(d.Mesh)
	part, err := partition.NewMultilevel(1).Partition(g, p)
	if err != nil {
		b.Fatal(err)
	}
	sum, err := mesh.Summarize(d.Mesh, part, p)
	if err != nil {
		b.Fatal(err)
	}
	return sum
}

func BenchmarkPartitionMultilevel128(b *testing.B) {
	d, err := mesh.BuildLayeredDeck(160, 80)
	if err != nil {
		b.Fatal(err)
	}
	g := partition.FromMesh(d.Mesh)
	ml := partition.NewMultilevel(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ml.Partition(g, 128); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterSimulate128 measures the simulator's per-iteration cost
// on the path every measurement takes: one cluster.Runner reused across
// iterations (exactly what SimulateIterations' Repeats loop does), so the
// working buffers are warm and only the Result allocates.
func BenchmarkClusterSimulate128(b *testing.B) {
	sum := benchDeckSummary(b, 128)
	cfg := cluster.Config{Net: netmodel.QsNetI(), Costs: compute.ES45()}
	r := cluster.NewRunner(sum)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Iteration = i
		if _, err := r.Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMeshSpecificPredict128(b *testing.B) {
	sum := benchDeckSummary(b, 128)
	env := experiments.NewQuickEnv()
	cal, err := env.ContrivedCalibration()
	if err != nil {
		b.Fatal(err)
	}
	model := core.NewMeshSpecific(cal, env.Net)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Predict(sum); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGeneralPredict512(b *testing.B) {
	env := experiments.NewQuickEnv()
	cal, err := env.ContrivedCalibration()
	if err != nil {
		b.Fatal(err)
	}
	model := core.NewGeneral(cal, env.Net, core.Homogeneous)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Predict(204800, 512); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHydroStepSerial(b *testing.B) {
	d, err := mesh.BuildLayeredDeck(40, 20)
	if err != nil {
		b.Fatal(err)
	}
	s, err := hydro.NewState(d, hydro.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := hydro.Step(s, hydro.Serial{}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHydroParallel4(b *testing.B) {
	d, err := mesh.BuildLayeredDeck(40, 20)
	if err != nil {
		b.Fatal(err)
	}
	g := partition.FromMesh(d.Mesh)
	part, err := partition.NewMultilevel(1).Partition(g, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hydro.RunParallel(d, part, 4, 5, hydro.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
