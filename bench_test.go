// Repository benchmark harness: one benchmark per paper table and figure
// (each regenerates the artifact through the experiments package in quick
// mode), the ablation benches DESIGN.md calls out, and microbenchmarks of
// the load-bearing kernels (partitioner, simulator, model, hydro step).
//
// Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benches are regeneration harnesses, not microbenchmarks:
// per-op times report how long regenerating the table/figure takes with
// memoized decks/partitions warm after the first iteration.
package krak

import (
	"testing"

	"krak/internal/cluster"
	"krak/internal/compute"
	"krak/internal/core"
	"krak/internal/experiments"
	"krak/internal/hydro"
	"krak/internal/mesh"
	"krak/internal/netmodel"
	"krak/internal/partition"
)

// benchExperiment runs one experiment repeatedly against a shared quick
// environment.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := experiments.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	env := experiments.NewQuickEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1PhaseTable(b *testing.B)       { benchExperiment(b, "table1") }
func BenchmarkTable2MaterialRatios(b *testing.B)   { benchExperiment(b, "table2") }
func BenchmarkTable3BoundaryExchange(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTable4Collectives(b *testing.B)      { benchExperiment(b, "table4") }
func BenchmarkTable5MeshSpecific(b *testing.B)     { benchExperiment(b, "table5") }
func BenchmarkTable6General(b *testing.B)          { benchExperiment(b, "table6") }
func BenchmarkFigure1Partitioning(b *testing.B)    { benchExperiment(b, "figure1") }
func BenchmarkFigure2PhaseTimes(b *testing.B)      { benchExperiment(b, "figure2") }
func BenchmarkFigure3CostCurves(b *testing.B)      { benchExperiment(b, "figure3") }
func BenchmarkFigure4Boundary(b *testing.B)        { benchExperiment(b, "figure4") }
func BenchmarkFigure5Scaling(b *testing.B)         { benchExperiment(b, "figure5") }

// Ablation benches (design choices called out in DESIGN.md).

func BenchmarkAblationPartitioner(b *testing.B) { benchExperiment(b, "ablation-partitioner") }
func BenchmarkAblationOverlap(b *testing.B)     { benchExperiment(b, "ablation-overlap") }
func BenchmarkAblationKnee(b *testing.B)        { benchExperiment(b, "ablation-knee") }
func BenchmarkAblationCombine(b *testing.B)     { benchExperiment(b, "ablation-combine") }
func BenchmarkAblationNetwork(b *testing.B)     { benchExperiment(b, "ablation-network") }

// Microbenchmarks of the load-bearing kernels.

func benchDeckSummary(b *testing.B, p int) *mesh.PartitionSummary {
	b.Helper()
	d, err := mesh.BuildLayeredDeck(160, 80) // 12,800 cells
	if err != nil {
		b.Fatal(err)
	}
	g := partition.FromMesh(d.Mesh)
	part, err := partition.NewMultilevel(1).Partition(g, p)
	if err != nil {
		b.Fatal(err)
	}
	sum, err := mesh.Summarize(d.Mesh, part, p)
	if err != nil {
		b.Fatal(err)
	}
	return sum
}

func BenchmarkPartitionMultilevel128(b *testing.B) {
	d, err := mesh.BuildLayeredDeck(160, 80)
	if err != nil {
		b.Fatal(err)
	}
	g := partition.FromMesh(d.Mesh)
	ml := partition.NewMultilevel(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ml.Partition(g, 128); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterSimulate128(b *testing.B) {
	sum := benchDeckSummary(b, 128)
	cfg := cluster.Config{Net: netmodel.QsNetI(), Costs: compute.ES45()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Iteration = i
		if _, err := cluster.Simulate(sum, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMeshSpecificPredict128(b *testing.B) {
	sum := benchDeckSummary(b, 128)
	env := experiments.NewQuickEnv()
	cal, err := env.ContrivedCalibration()
	if err != nil {
		b.Fatal(err)
	}
	model := core.NewMeshSpecific(cal, env.Net)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Predict(sum); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGeneralPredict512(b *testing.B) {
	env := experiments.NewQuickEnv()
	cal, err := env.ContrivedCalibration()
	if err != nil {
		b.Fatal(err)
	}
	model := core.NewGeneral(cal, env.Net, core.Homogeneous)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Predict(204800, 512); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHydroStepSerial(b *testing.B) {
	d, err := mesh.BuildLayeredDeck(40, 20)
	if err != nil {
		b.Fatal(err)
	}
	s, err := hydro.NewState(d, hydro.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := hydro.Step(s, hydro.Serial{}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHydroParallel4(b *testing.B) {
	d, err := mesh.BuildLayeredDeck(40, 20)
	if err != nil {
		b.Fatal(err)
	}
	g := partition.FromMesh(d.Mesh)
	part, err := partition.NewMultilevel(1).Partition(g, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hydro.RunParallel(d, part, 4, 5, hydro.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
