// The scenario matrix: every machine checked into the machines/ catalog
// crossed with the flag combinations the CLI exposes, in the style of
// Kratos-like test matrices — one table, every cell a subtest, so a
// catalog edit or a flag regression fails with the exact (machine,
// flags, op) coordinate in the test name.
package krak

import (
	"encoding/json"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"krak/internal/compare"
	"krak/pkg/krak"
)

// matrixCatalogDir is the checked-in machine catalog at the repo root.
const matrixCatalogDir = "machines"

// matrixMachines loads the catalog once per call; every spec arrives
// named (the machine directive or the file base name).
func matrixMachines(t *testing.T) []krak.MachineSpec {
	t.Helper()
	specs, err := compare.LoadPaths([]string{matrixCatalogDir})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) < 8 {
		t.Fatalf("catalog has %d machines, want >= 8", len(specs))
	}
	return specs
}

// matrixVariants are the flag combinations each machine is crossed
// with. All run quick (shrunken decks) so the full matrix stays cheap;
// serialize-sends flips the overlap model, the paper's Section 4 knob.
var matrixVariants = []struct {
	name   string
	mutate func(*krak.MachineSpec)
}{
	{"quick", func(ms *krak.MachineSpec) { ms.Quick = true }},
	{"quick+serialize-sends", func(ms *krak.MachineSpec) {
		ms.Quick = true
		ms.SerializeSends = true
	}},
}

// matrixOps are the operations each (machine, variant) cell runs.
var matrixOps = []string{"predict", "simulate"}

// matrixRun builds the machine at the given parallelism and runs one op,
// returning the Result.
func matrixRun(t *testing.T, ms krak.MachineSpec, parallel int, op string, sa *krak.SharedArtifacts) *krak.Result {
	t.Helper()
	opts := append(ms.Options(), krak.WithParallelism(parallel), krak.WithSharedArtifacts(sa))
	m, err := krak.NewMachine(opts...)
	if err != nil {
		t.Fatalf("building %s: %v", ms.Name, err)
	}
	var scOpts []krak.ScenarioOption
	if op == "predict" {
		scOpts = []krak.ScenarioOption{krak.WithDeck("small"), krak.WithPE(8),
			krak.WithModel(krak.GeneralHomogeneous)}
	} else {
		scOpts = []krak.ScenarioOption{krak.WithDeck("small"), krak.WithPE(8),
			krak.WithPartitioner("multilevel"), krak.WithIterations(1)}
	}
	sc, err := krak.NewScenario(scOpts...)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := krak.NewSession(m, sc)
	if err != nil {
		t.Fatal(err)
	}
	var res *krak.Result
	if op == "predict" {
		res, err = sess.Predict()
	} else {
		res, err = sess.Simulate()
	}
	if err != nil {
		t.Fatalf("%s %s: %v", op, ms.Name, err)
	}
	return res
}

// TestScenarioMatrix runs every catalog machine through every flag
// variant and op, asserting the two invariants every cell must hold:
// times are finite and positive, and the Result is byte-identical at
// parallelism 1 and 4 (worker-pool width must never leak into model or
// simulator content).
func TestScenarioMatrix(t *testing.T) {
	sa := krak.NewSharedArtifacts()
	for _, ms := range matrixMachines(t) {
		for _, variant := range matrixVariants {
			spec := ms
			variant.mutate(&spec)
			for _, op := range matrixOps {
				t.Run(spec.Name+"/"+variant.name+"/"+op, func(t *testing.T) {
					serial := matrixRun(t, spec, 1, op, sa)
					if !(serial.TotalSeconds > 0) || math.IsInf(serial.TotalSeconds, 0) {
						t.Errorf("total time %g, want finite and positive", serial.TotalSeconds)
					}
					parallel := matrixRun(t, spec, 4, op, sa)
					want, err := json.Marshal(serial)
					if err != nil {
						t.Fatal(err)
					}
					got, err := json.Marshal(parallel)
					if err != nil {
						t.Fatal(err)
					}
					if string(got) != string(want) {
						t.Errorf("parallel(4) result differs from parallel(1):\n--- parallel ---\n%s\n--- serial ---\n%s", got, want)
					}
				})
			}
		}
	}
}

// TestScenarioMatrixCoversCatalog fails when a catalog file gains no
// matrix row or a matrix name matches no catalog file: the matrix set
// must be exactly the *.machine files under machines/, each named by its
// machine directive matching its file base name (so matrix failures,
// goldens, and `krak compare` all key on the same names).
func TestScenarioMatrixCoversCatalog(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(matrixCatalogDir, "*"+compare.MachineFileExt))
	if err != nil || len(files) == 0 {
		t.Fatalf("reading catalog: %v (%d files)", err, len(files))
	}
	inMatrix := map[string]bool{}
	for _, ms := range matrixMachines(t) {
		inMatrix[ms.Name] = true
	}
	for _, f := range files {
		name := strings.TrimSuffix(filepath.Base(f), compare.MachineFileExt)
		if !inMatrix[name] {
			t.Errorf("catalog file %s has no matrix row (its machine directive must match the file base name)", filepath.Base(f))
		}
		delete(inMatrix, name)
	}
	for name := range inMatrix {
		t.Errorf("matrix machine %q matches no catalog file", name)
	}
}
