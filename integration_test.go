// Integration tests: cross-package flows that mirror how the examples and
// the paper's methodology use the library end to end.
package krak

import (
	"context"
	"math"
	"strings"
	"testing"

	"krak/internal/cluster"
	"krak/internal/compute"
	"krak/internal/core"
	"krak/internal/experiments"
	"krak/internal/hydro"
	"krak/internal/mesh"
	"krak/internal/netmodel"
	"krak/internal/partition"
	"krak/internal/phases"
)

// TestEndToEndGeneralModelValidation is the quickstart flow: deck →
// partition → simulate → calibrate → predict, asserting the paper's
// headline property (general/homogeneous model error small and best at
// scale) on a scaled-down deck.
func TestEndToEndGeneralModelValidation(t *testing.T) {
	env := experiments.NewQuickEnv()
	d, err := env.Deck(mesh.Medium)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := env.ContrivedCalibration()
	if err != nil {
		t.Fatal(err)
	}
	model := core.NewGeneral(cal, env.Net, core.Homogeneous)
	for _, p := range []int{32, 64, 128} {
		sum, err := env.Partition(d, p)
		if err != nil {
			t.Fatal(err)
		}
		meas, err := env.Measure(sum)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := model.Predict(d.Mesh.NumCells(), p)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(meas-pred.Total) / meas; rel > 0.10 {
			t.Errorf("P=%d general model error %.1f%% > 10%%", p, rel*100)
		}
	}
}

// TestEndToEndMeshSpecificBeatsGeneralOnExactPartition checks that, with a
// well-calibrated cost table, the mesh-specific model (which sees the true
// irregular partition) does not do worse than the idealized general model
// at moderate scale.
func TestEndToEndMeshSpecificTracksMeasured(t *testing.T) {
	env := experiments.NewQuickEnv()
	d, err := env.Deck(mesh.Medium)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := env.ContrivedCalibration()
	if err != nil {
		t.Fatal(err)
	}
	sum, err := env.Partition(d, 64)
	if err != nil {
		t.Fatal(err)
	}
	meas, err := env.Measure(sum)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := core.NewMeshSpecific(cal, env.Net).Predict(sum)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(meas-pred.Total) / meas; rel > 0.10 {
		t.Errorf("mesh-specific error %.1f%% > 10%%", rel*100)
	}
}

// TestHeterogeneousCrossover verifies the Figure 5 mechanism on the
// simulated platform: the heterogeneous model's error trends downward
// (toward over-prediction) as P grows, because per-material boundary
// messages pile up latency.
func TestHeterogeneousCrossover(t *testing.T) {
	env := experiments.NewQuickEnv()
	d, err := env.Deck(mesh.Medium)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := env.ContrivedCalibration()
	if err != nil {
		t.Fatal(err)
	}
	het := core.NewGeneral(cal, env.Net, core.Heterogeneous)
	var errs []float64
	for _, p := range []int{16, 64, 256} {
		sum, err := env.Partition(d, p)
		if err != nil {
			t.Fatal(err)
		}
		meas, err := env.Measure(sum)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := het.Predict(d.Mesh.NumCells(), p)
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, (meas-pred.Total)/meas)
	}
	if !(errs[2] < errs[0]) {
		t.Errorf("heterogeneous error did not trend toward over-prediction: %v", errs)
	}
}

// TestHydroProfileSupportsCostTableShape ties the application to the cost
// model: in the real hydro code, the heavy compute-only phases (3 and 6)
// must dominate the light bookkeeping phases, matching the weighting the
// ES45 truth table assumes.
func TestHydroProfileSupportsCostTableShape(t *testing.T) {
	d, err := mesh.BuildLayeredDeck(40, 20)
	if err != nil {
		t.Fatal(err)
	}
	_, timers, err := hydro.RunSerial(d, 50, hydro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	heavy := timers[2] + timers[5]  // phases 3 and 6
	light := timers[0] + timers[12] // phases 1 and 13
	if heavy <= light {
		t.Errorf("phases 3+6 (%.4fs) should outweigh phases 1+13 (%.4fs)", heavy, light)
	}
}

// TestPartitionerQualityOrdering checks the expected quality ordering on
// the simulated cluster: multilevel <= sfc/rcb < strips < random iteration
// time.
func TestPartitionerQualityOrdering(t *testing.T) {
	d, err := mesh.BuildLayeredDeck(80, 40)
	if err != nil {
		t.Fatal(err)
	}
	g := partition.FromMesh(d.Mesh)
	cfg := cluster.Config{Net: netmodel.QsNetI(), Costs: compute.ES45().WithoutNoise()}
	const p = 32
	times := map[string]float64{}
	for _, pr := range []partition.Partitioner{
		partition.NewMultilevel(1), partition.SFC{}, partition.Strips{}, partition.Random{Seed: 1},
	} {
		part, err := pr.Partition(g, p)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := mesh.Summarize(d.Mesh, part, p)
		if err != nil {
			t.Fatal(err)
		}
		r, err := cluster.Simulate(sum, cfg)
		if err != nil {
			t.Fatal(err)
		}
		times[pr.Name()] = r.IterationTime
	}
	if !(times["multilevel-kway"] <= times["hilbert-sfc"]*1.05) {
		t.Errorf("multilevel (%v) should not lose clearly to sfc (%v)",
			times["multilevel-kway"], times["hilbert-sfc"])
	}
	if !(times["hilbert-sfc"] < times["random"]) {
		t.Errorf("sfc (%v) should beat random (%v)", times["hilbert-sfc"], times["random"])
	}
	if !(times["strips-x"] < times["random"]) {
		t.Errorf("strips (%v) should beat random (%v)", times["strips-x"], times["random"])
	}
}

// TestExperimentRegistryRunsQuick smoke-runs every registered experiment in
// quick mode — the same path the benchmark harness and the CLI take.
func TestExperimentRegistryRunsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep")
	}
	env := experiments.NewQuickEnv()
	for _, e := range experiments.Registry {
		res, err := e.Run(context.Background(), env)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if res.ID != e.ID {
			t.Fatalf("%s returned result id %s", e.ID, res.ID)
		}
		if out := res.Render(); !strings.Contains(out, res.ID) {
			t.Fatalf("%s render missing id", e.ID)
		}
	}
}

// TestPhaseTableDrivesBothSides asserts the single-source-of-truth
// property: the simulator's per-phase communication matches the phase
// table's declared actions.
func TestPhaseTableDrivesBothSides(t *testing.T) {
	env := experiments.NewQuickEnv()
	d, err := env.Deck(mesh.Small)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := env.Partition(d, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.Config{Net: netmodel.QsNetI(), Costs: compute.ES45().WithoutNoise(), Exact: true}
	r, err := cluster.Simulate(sum, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := env.ContrivedCalibration()
	if err != nil {
		t.Fatal(err)
	}
	pred, err := core.NewMeshSpecific(cal, env.Net).Predict(sum)
	if err != nil {
		t.Fatal(err)
	}
	for i, ph := range phases.Table1() {
		simHasP2P := r.CommTimes[i] > pred.PhaseCollective[i]+1e-9
		if ph.HasPointToPoint() != simHasP2P && sum.P > 1 {
			t.Errorf("phase %d: table says p2p=%v, simulator shows %v",
				ph.Number, ph.HasPointToPoint(), simHasP2P)
		}
		modelHasP2P := pred.PhaseP2P[i] > 0
		if ph.HasPointToPoint() != modelHasP2P {
			t.Errorf("phase %d: table says p2p=%v, model shows %v",
				ph.Number, ph.HasPointToPoint(), modelHasP2P)
		}
	}
}
