// Package krak is a from-scratch Go reproduction of "A Performance Model
// of the Krak Hydrodynamics Application" (Barker, Pakin, Kerbyson —
// ICPP 2006).
//
// The public API lives in pkg/krak: Machine describes the platform
// (QsNetCluster is the paper's AlphaServer ES45 / QsNet-I validation
// machine, WithParallelism bounds its worker pool), Scenario describes the
// workload via functional options (WithDeck, WithPE, WithModel, ...), and
// Session answers questions — Predict (analytic model), Simulate
// (discrete-event "measured" platform), RunHydro (the Lagrangian
// mini-app), Partition (partition quality), Experiment/Experiments
// (regenerate paper tables and figures, serially or as a concurrent
// batch), Sweep (evaluate a whole grid of scenarios concurrently), and
// Calibrate (fit machine parameters to measured timings, yielding a
// reusable machine description) — all returning unified
// Result/SweepResult/CalibrationResult values with Render and
// MarshalJSON output. The cmd/krak CLI exposes the same operations as
// subcommands (predict, simulate, hydro, part, sweep, experiments,
// calibrate), and `krak serve` runs them as a long-lived batched HTTP
// service (internal/server) whose responses are byte-identical to the
// CLI's --json output; pkg/krak also carries the service's wire types
// (PredictRequest, SimulateRequest, SweepRequest, CalibrateRequest,
// MachineSpec — including declarative machine files via
// ParseMachineFile/-machine-file).
//
// Everything under internal/ — the analytic model (internal/core), the
// hydro mini-app (internal/hydro), the METIS-style partitioner
// (internal/partition), the QsNet-like network model (internal/netmodel),
// the cluster simulator (internal/cluster), and the concurrent execution
// substrate (internal/engine: worker pools and single-flight artifact
// caches) — is unstable implementation detail; depend only on pkg/krak.
// docs/ARCHITECTURE.md maps every package and the data flow between them;
// docs/MODEL.md maps the paper's equations to the code.
//
// The root package carries the repository-level benchmark harness
// (bench_test.go): one benchmark per paper table and figure, the ablation
// benches, and the serial-vs-parallel sweep pair (BenchmarkSweepSerial /
// BenchmarkSweepParallel) that measures the engine's speedup.
package krak
