// Package krak is a from-scratch Go reproduction of "A Performance Model
// of the Krak Hydrodynamics Application" (Barker, Pakin, Kerbyson —
// ICPP 2006): the analytic performance model itself (internal/core), the
// Krak stand-in Lagrangian hydrodynamics mini-app (internal/hydro), the
// METIS-style mesh partitioner (internal/partition), the QsNet-like network
// model (internal/netmodel), and the discrete-event cluster simulator
// (internal/cluster) that together regenerate every table and figure of the
// paper's evaluation (internal/experiments).
//
// The root package carries the repository-level benchmark harness
// (bench_test.go): one benchmark per paper table and figure plus the
// ablation benches described in DESIGN.md.
package krak
