// Package krak is a from-scratch Go reproduction of "A Performance Model
// of the Krak Hydrodynamics Application" (Barker, Pakin, Kerbyson —
// ICPP 2006).
//
// The public API lives in pkg/krak: Machine describes the platform
// (QsNetCluster is the paper's AlphaServer ES45 / QsNet-I validation
// machine), Scenario describes the workload via functional options
// (WithDeck, WithPE, WithModel, ...), and Session answers questions —
// Predict (analytic model), Simulate (discrete-event "measured" platform),
// RunHydro (the Lagrangian mini-app), Partition (partition quality), and
// Experiment (regenerate a paper table or figure) — all returning a
// unified Result with Render and MarshalJSON output. The cmd/krak CLI
// exposes the same five operations as subcommands.
//
// Everything under internal/ — the analytic model (internal/core), the
// hydro mini-app (internal/hydro), the METIS-style partitioner
// (internal/partition), the QsNet-like network model (internal/netmodel),
// and the cluster simulator (internal/cluster) — is unstable
// implementation detail; depend only on pkg/krak.
//
// The root package carries the repository-level benchmark harness
// (bench_test.go): one benchmark per paper table and figure plus the
// ablation benches described in DESIGN.md.
package krak
