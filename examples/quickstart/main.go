// Quickstart: the minimal end-to-end use of the public façade — describe
// the paper's machine, describe a scenario on the medium deck, then
// predict with the analytic model and "measure" on the simulated cluster
// at several scales.
package main

import (
	"fmt"
	"log"

	"krak/pkg/krak"
)

func main() {
	// The paper's validation platform: AlphaServer ES45 nodes on QsNet-I.
	// One Machine memoizes decks, partitions, and calibrations, so reuse
	// it across sessions.
	machine := krak.QsNetCluster()

	fmt.Println("  PEs   measured(ms)  predicted(ms)   error")
	for _, p := range []int{64, 128, 256, 512} {
		// The general/homogeneous model is the paper's scalability tool.
		sc, err := krak.NewScenario(
			krak.WithDeck("medium"),
			krak.WithPE(p),
			krak.WithModel(krak.GeneralHomogeneous),
		)
		if err != nil {
			log.Fatal(err)
		}
		s, err := krak.NewSession(machine, sc)
		if err != nil {
			log.Fatal(err)
		}
		meas, err := s.Simulate()
		if err != nil {
			log.Fatal(err)
		}
		pred, err := s.Predict()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4d   %10.1f   %11.1f   %+.1f%%\n",
			p, meas.TotalSeconds*1e3, pred.TotalSeconds*1e3,
			(meas.TotalSeconds-pred.TotalSeconds)/meas.TotalSeconds*100)
	}
	fmt.Println("\nThe paper's headline: the general model with a homogeneous material")
	fmt.Println("assumption predicts 512-PE iteration time to within ~3% (Table 6).")
}
