// Quickstart: build the paper's medium deck, calibrate the model from
// simulated measurements, and predict iteration time at several scales —
// the minimal end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"krak/internal/core"
	"krak/internal/experiments"
	"krak/internal/mesh"
)

func main() {
	// An Env wires together the deck builders, the METIS-style
	// partitioner, the QsNet-like network model, and the discrete-event
	// cluster simulator that stands in for the paper's ES45 machine.
	env := experiments.NewEnv()

	deck, err := env.Deck(mesh.Medium)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Deck: %s, %d cells, material fractions %.3v\n",
		deck.Name, deck.Mesh.NumCells(), deck.Mesh.MaterialFractions())

	// Calibrate per-cell cost curves the way §3.1 does: contrived
	// single-material grids profiled on the measured platform.
	cal, err := env.ContrivedCalibration()
	if err != nil {
		log.Fatal(err)
	}

	// The general/homogeneous model is the paper's scalability tool.
	model := core.NewGeneral(cal, env.Net, core.Homogeneous)
	fmt.Println("\n  PEs   measured(ms)  predicted(ms)   error")
	for _, p := range []int{64, 128, 256, 512} {
		sum, err := env.Partition(deck, p)
		if err != nil {
			log.Fatal(err)
		}
		meas, err := env.Measure(sum)
		if err != nil {
			log.Fatal(err)
		}
		pred, err := model.Predict(deck.Mesh.NumCells(), p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4d   %10.1f   %11.1f   %+.1f%%\n",
			p, meas*1e3, pred.Total*1e3, (meas-pred.Total)/meas*100)
	}
	fmt.Println("\nThe paper's headline: the general model with a homogeneous material")
	fmt.Println("assumption predicts 512-PE iteration time to within ~3% (Table 6).")
}
