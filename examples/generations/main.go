// Machine generations: the paper's model was calibrated for one 2003
// platform (AlphaServer ES45 / QsNet-I); the machines/ catalog sketches
// the platforms that came after it — fat-tree InfiniBand clusters,
// torus MPPs, dragonfly systems, GPU-dense nodes. This walkthrough
// loads each catalog file through the façade, predicts the medium deck
// across a PE sweep on every machine, and reports the two numbers a
// procurement study wants: where each machine stops scaling, and when
// (if ever) it overtakes the paper's baseline.
//
// Run from the repo root (or pass the catalog dir):
//
//	go run ./examples/generations [machines-dir]
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"krak/pkg/krak"
)

const baseline = "es45-qsnet"

var pes = []int{16, 64, 256, 1024}

func main() {
	dir := "machines"
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.machine"))
	if err != nil || len(files) == 0 {
		log.Fatalf("no machine files under %s (run from the repo root): %v", dir, err)
	}
	sort.Strings(files)

	// One shared artifact store: the deck and its partitions are built
	// once and reused by every machine in the catalog.
	sa := krak.NewSharedArtifacts()
	names := make([]string, len(files))
	curves := make([][]float64, len(files))
	for i, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			log.Fatal(err)
		}
		m, err := krak.LoadMachine(src, krak.WithSharedArtifacts(sa))
		if err != nil {
			log.Fatalf("%s: %v", f, err)
		}
		names[i] = strings.TrimSuffix(filepath.Base(f), ".machine")
		for _, p := range pes {
			sc, err := krak.NewScenario(krak.WithDeck("medium"), krak.WithPE(p),
				krak.WithModel(krak.GeneralHomogeneous))
			if err != nil {
				log.Fatal(err)
			}
			s, err := krak.NewSession(m, sc)
			if err != nil {
				log.Fatal(err)
			}
			res, err := s.Predict()
			if err != nil {
				log.Fatal(err)
			}
			curves[i] = append(curves[i], res.TotalSeconds)
		}
	}

	base := 0
	for i, n := range names {
		if n == baseline {
			base = i
		}
	}

	fmt.Println("Medium deck: predicted iteration time (ms) across machine generations")
	fmt.Printf("\n  %-18s", "machine")
	for _, p := range pes {
		fmt.Printf("  %9d", p)
	}
	fmt.Printf("  %s\n", "overtakes baseline at")
	for i, name := range names {
		fmt.Printf("  %-18s", name)
		for _, t := range curves[i] {
			fmt.Printf("  %9.2f", t*1e3)
		}
		fmt.Printf("  %s\n", crossover(curves[i], curves[base], i == base))
	}
	fmt.Println("\nThe faster generations overtake immediately on compute density;")
	fmt.Println("commodity GigE and the Blue Gene-class machine never do — their slow")
	fmt.Println("cores eat the network advantage at these scales. `krak compare")
	fmt.Println("-machines", dir+"` runs this same study with knees, speedup curves,")
	fmt.Println("and a chart.")
}

// crossover reports the first swept PE count where this curve is
// strictly below the baseline's.
func crossover(curve, base []float64, isBase bool) string {
	if isBase {
		return "(baseline)"
	}
	for i, t := range curve {
		if t < base[i] {
			return fmt.Sprintf("%d PEs", pes[i])
		}
	}
	return "never"
}
