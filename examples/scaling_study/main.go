// Scaling study: reproduce Figure 5's shape — measured vs the general
// model's homogeneous and heterogeneous assumptions across processor
// counts, showing the heterogeneous model drifting above measurements at
// scale as per-material message latencies pile up.
package main

import (
	"fmt"
	"log"

	"krak/internal/core"
	"krak/internal/experiments"
	"krak/internal/mesh"
	"krak/internal/textplot"
)

func main() {
	env := experiments.NewEnv()
	deck, err := env.Deck(mesh.Medium)
	if err != nil {
		log.Fatal(err)
	}
	cal, err := env.ContrivedCalibration()
	if err != nil {
		log.Fatal(err)
	}
	homo := core.NewGeneral(cal, env.Net, core.Homogeneous)
	het := core.NewGeneral(cal, env.Net, core.Heterogeneous)

	var chart textplot.Chart
	chart.Title = "Medium problem (204,800 cells): iteration time (s) vs PEs (log-log)"
	chart.LogX, chart.LogY = true, true
	var px, meas, predH, predX []float64

	fmt.Println("  PEs   measured(ms)  homo(ms)  hetero(ms)")
	for _, p := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024} {
		sum, err := env.Partition(deck, p)
		if err != nil {
			log.Fatal(err)
		}
		m, err := env.Measure(sum)
		if err != nil {
			log.Fatal(err)
		}
		h, err := homo.Predict(deck.Mesh.NumCells(), p)
		if err != nil {
			log.Fatal(err)
		}
		x, err := het.Predict(deck.Mesh.NumCells(), p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4d   %10.1f  %8.1f  %9.1f\n", p, m*1e3, h.Total*1e3, x.Total*1e3)
		px = append(px, float64(p))
		meas = append(meas, m)
		predH = append(predH, h.Total)
		predX = append(predX, x.Total)
	}
	chart.AddSeries(textplot.Series{Name: "Measured", Marker: 'm', Xs: px, Ys: meas})
	chart.AddSeries(textplot.Series{Name: "Homogeneous", Marker: 'o', Xs: px, Ys: predH})
	chart.AddSeries(textplot.Series{Name: "Heterogeneous", Marker: 'h', Xs: px, Ys: predX})
	fmt.Println()
	fmt.Print(chart.Render())
}
