// Scaling study: reproduce Figure 5's shape — measured vs the general
// model's homogeneous and heterogeneous assumptions across processor
// counts, showing the heterogeneous model drifting above measurements at
// scale as per-material message latencies pile up.
package main

import (
	"fmt"
	"log"

	"krak/pkg/krak"
)

func main() {
	machine := krak.QsNetCluster()

	fmt.Println("Medium problem: iteration time vs PEs")
	fmt.Println("\n  PEs   measured(ms)  homo(ms)  hetero(ms)")
	for _, p := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024} {
		meas, err := session(machine, p, krak.GeneralHomogeneous).Simulate()
		if err != nil {
			log.Fatal(err)
		}
		homo, err := session(machine, p, krak.GeneralHomogeneous).Predict()
		if err != nil {
			log.Fatal(err)
		}
		het, err := session(machine, p, krak.GeneralHeterogeneous).Predict()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4d   %10.1f  %8.1f  %9.1f\n",
			p, meas.TotalSeconds*1e3, homo.TotalSeconds*1e3, het.TotalSeconds*1e3)
	}
	fmt.Println("\nBoth assumptions track measurements through the compute-bound range;")
	fmt.Println("the heterogeneous variant drifts high at scale as per-material message")
	fmt.Println("latencies accumulate — Figure 5's signature shape.")
}

func session(m *krak.Machine, p int, model krak.Model) *krak.Session {
	sc, err := krak.NewScenario(
		krak.WithDeck("medium"),
		krak.WithPE(p),
		krak.WithModel(model),
	)
	if err != nil {
		log.Fatal(err)
	}
	s, err := krak.NewSession(m, sc)
	if err != nil {
		log.Fatal(err)
	}
	return s
}
