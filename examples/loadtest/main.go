// Command loadtest is a small load generator for `krak serve`: it fires
// concurrent /v1/predict requests built from the pkg/krak wire types,
// decodes every response through Result.UnmarshalJSON (so a schema
// drift fails loudly), and reports throughput and latency percentiles.
// The first pass over a scenario set is cold (the server computes); the
// following passes measure the serving layer's single-flight LRU.
//
// Usage:
//
//	krak serve -quick &
//	go run ./examples/loadtest -addr http://localhost:8080 -n 2000 -c 16
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"krak/pkg/krak"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "base URL of krak serve")
	n := flag.Int("n", 1000, "total requests")
	c := flag.Int("c", 8, "concurrent workers")
	deck := flag.String("deck", "small", "deck every request asks about")
	pes := flag.String("pe", "4,8,16,32,64,128", "comma-separated PE counts to cycle through")
	model := flag.String("model", "general-homo", "model variant")
	flag.Parse()

	var peList []int
	for _, f := range strings.Split(*pes, ",") {
		var pe int
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &pe); err != nil || pe <= 0 {
			log.Fatalf("bad -pe entry %q", f)
		}
		peList = append(peList, pe)
	}

	// Pre-encode one request body per grid point; workers cycle through
	// them, so every point goes cold exactly once and warm thereafter.
	bodies := make([][]byte, len(peList))
	for i, pe := range peList {
		req := krak.PredictRequest{Deck: *deck, PEs: pe, Model: *model}
		b, err := json.Marshal(req)
		if err != nil {
			log.Fatal(err)
		}
		bodies[i] = b
	}

	// Wait for the server to come up.
	if err := waitHealthy(*addr); err != nil {
		log.Fatalf("server not healthy: %v", err)
	}

	var (
		next      atomic.Int64
		failures  atomic.Int64
		latencies = make([]time.Duration, *n)
		client    = &http.Client{Timeout: 60 * time.Second}
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *n {
					return
				}
				t0 := time.Now()
				if err := predict(client, *addr, bodies[i%len(bodies)]); err != nil {
					failures.Add(1)
					log.Printf("request %d: %v", i, err)
				}
				latencies[i] = time.Since(t0)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	fmt.Printf("loadtest: %d requests, %d workers, %d failures\n", *n, *c, failures.Load())
	fmt.Printf("  wall %.2fs  throughput %.0f req/s\n", wall.Seconds(), float64(*n)/wall.Seconds())
	fmt.Printf("  latency p50 %v  p95 %v  p99 %v  max %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), latencies[len(latencies)-1].Round(time.Microsecond))
	if failures.Load() > 0 {
		os.Exit(1)
	}
}

// predict POSTs one request and validates the response decodes as a
// schema-stamped predict Result.
func predict(client *http.Client, addr string, body []byte) error {
	resp, err := client.Post(addr+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, data)
	}
	var res krak.Result
	if err := json.Unmarshal(data, &res); err != nil {
		return err // ErrSchema here means the server drifted
	}
	if res.Kind != krak.KindPredict || res.TotalSeconds <= 0 {
		return fmt.Errorf("implausible result: kind=%s total=%g", res.Kind, res.TotalSeconds)
	}
	return nil
}

// waitHealthy polls /healthz until the server answers or the budget runs
// out.
func waitHealthy(addr string) error {
	var lastErr error
	for i := 0; i < 50; i++ {
		resp, err := http.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			lastErr = fmt.Errorf("status %d", resp.StatusCode)
		} else {
			lastErr = err
		}
		time.Sleep(100 * time.Millisecond)
	}
	return lastErr
}
