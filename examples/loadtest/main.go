// Command loadtest is a small load generator for `krak serve`: it fires
// concurrent requests built from the pkg/krak wire types, decodes every
// response through the schema-stamped UnmarshalJSON (so a schema drift
// fails loudly), and reports throughput, latency percentiles, and
// backpressure. The first pass over a scenario set is cold (the server
// computes); the following passes measure the serving layer's
// single-flight LRU.
//
// With -endpoint sweep the generator drives the heavy admission class:
// point it at a server with a tight -heavy-limit and more workers than
// slots, and the report shows how many requests the server shed with 429
// (and the Retry-After hints it sent) versus served — the admission
// control acceptance drill.
//
// Usage:
//
//	krak serve -quick &
//	go run ./examples/loadtest -addr http://localhost:8080 -n 2000 -c 16
//	go run ./examples/loadtest -endpoint sweep -n 50 -c 16   # saturation
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"krak/pkg/krak"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "base URL of krak serve")
	n := flag.Int("n", 1000, "total requests")
	c := flag.Int("c", 8, "concurrent workers")
	deck := flag.String("deck", "small", "deck every request asks about")
	pes := flag.String("pe", "4,8,16,32,64,128", "comma-separated PE counts to cycle through")
	model := flag.String("model", "general-homo", "model variant")
	endpoint := flag.String("endpoint", "predict", "endpoint to drive: predict (light class) or sweep (heavy class)")
	flag.Parse()

	var peList []int
	for _, f := range strings.Split(*pes, ",") {
		var pe int
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &pe); err != nil || pe <= 0 {
			log.Fatalf("bad -pe entry %q", f)
		}
		peList = append(peList, pe)
	}

	// Pre-encode the request bodies. Predict cycles one body per grid
	// point, so every point goes cold exactly once and warm thereafter;
	// sweep sends the whole grid each time (uncached on the server — each
	// request is real heavy-class work, which is what saturates admission).
	var bodies [][]byte
	switch *endpoint {
	case "predict":
		for _, pe := range peList {
			req := krak.PredictRequest{Deck: *deck, PEs: pe, Model: *model}
			b, err := json.Marshal(req)
			if err != nil {
				log.Fatal(err)
			}
			bodies = append(bodies, b)
		}
	case "sweep":
		req := krak.SweepRequest{Decks: []string{*deck}, PEs: peList, Model: *model}
		b, err := json.Marshal(req)
		if err != nil {
			log.Fatal(err)
		}
		bodies = append(bodies, b)
	default:
		log.Fatalf("bad -endpoint %q (predict|sweep)", *endpoint)
	}

	// Wait for the server to come up.
	if err := waitHealthy(*addr); err != nil {
		log.Fatalf("server not healthy: %v", err)
	}

	var (
		next       atomic.Int64
		failures   atomic.Int64
		rejected   atomic.Int64 // 429: admission queue full
		retryHints atomic.Int64 // 429/503 responses carrying Retry-After
		degraded   atomic.Int64 // gateway responses carrying Krak-Degraded
		latencies  = make([]time.Duration, *n)
		client     = &http.Client{Timeout: 120 * time.Second}
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *n {
					return
				}
				t0 := time.Now()
				deg, err := request(client, *addr, *endpoint, bodies[i%len(bodies)])
				if deg != "" {
					// A gateway answered from a degradation tier (its disk
					// cache or local quick evaluation) — served, not failed,
					// but worth its own line in the report.
					degraded.Add(1)
				}
				switch {
				case err == nil:
				case errors429(err):
					// Backpressure is the server working as designed under
					// saturation, not a failure: count it separately.
					rejected.Add(1)
					if hasRetryAfter(err) {
						retryHints.Add(1)
					}
				default:
					failures.Add(1)
					log.Printf("request %d: %v", i, err)
				}
				latencies[i] = time.Since(t0)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	served := int64(*n) - failures.Load() - rejected.Load()
	fmt.Printf("loadtest: %d requests to /v1/%s, %d workers, %d served, %d failures\n",
		*n, *endpoint, *c, served, failures.Load())
	fmt.Printf("  backpressure: %d rejected with 429 (%d carried Retry-After)\n",
		rejected.Load(), retryHints.Load())
	if degraded.Load() > 0 {
		fmt.Printf("  degraded: %d served via a gateway degradation tier (Krak-Degraded)\n", degraded.Load())
	}
	fmt.Printf("  wall %.2fs  throughput %.0f req/s\n", wall.Seconds(), float64(*n)/wall.Seconds())
	fmt.Printf("  latency p50 %v  p95 %v  p99 %v  max %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), latencies[len(latencies)-1].Round(time.Microsecond))
	if failures.Load() > 0 {
		os.Exit(1)
	}
}

// backpressureErr marks a 429 rejection so the counters can distinguish
// the server shedding load from the server breaking.
type backpressureErr struct {
	retryAfter string
}

func (e *backpressureErr) Error() string {
	return "rejected with 429 (Retry-After " + e.retryAfter + ")"
}

func errors429(err error) bool {
	_, ok := err.(*backpressureErr)
	return ok
}

func hasRetryAfter(err error) bool {
	b, ok := err.(*backpressureErr)
	return ok && b.retryAfter != ""
}

// request POSTs one request and validates the response decodes as the
// endpoint's schema-stamped result type. The first return is the
// Krak-Degraded header ("" when a replica served normally).
func request(client *http.Client, addr, endpoint string, body []byte) (string, error) {
	resp, err := client.Post(addr+"/v1/"+endpoint, "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	degraded := resp.Header.Get("Krak-Degraded")
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return degraded, err
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		return degraded, &backpressureErr{retryAfter: resp.Header.Get("Retry-After")}
	}
	if resp.StatusCode != http.StatusOK {
		return degraded, fmt.Errorf("status %d: %s", resp.StatusCode, data)
	}
	switch endpoint {
	case "sweep":
		var sr krak.SweepResult
		if err := json.Unmarshal(data, &sr); err != nil {
			return degraded, err // ErrSchema here means the server drifted
		}
		if len(sr.Points) == 0 {
			return degraded, fmt.Errorf("implausible sweep: no points")
		}
	default:
		var res krak.Result
		if err := json.Unmarshal(data, &res); err != nil {
			return degraded, err // ErrSchema here means the server drifted
		}
		if res.Kind != krak.KindPredict || res.TotalSeconds <= 0 {
			return degraded, fmt.Errorf("implausible result: kind=%s total=%g", res.Kind, res.TotalSeconds)
		}
	}
	return degraded, nil
}

// waitHealthy polls /healthz until the server answers or the budget runs
// out.
func waitHealthy(addr string) error {
	var lastErr error
	for i := 0; i < 50; i++ {
		resp, err := http.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			lastErr = fmt.Errorf("status %d", resp.StatusCode)
		} else {
			lastErr = err
		}
		time.Sleep(100 * time.Millisecond)
	}
	return lastErr
}
