// Partitioning study: the use case from the paper's introduction —
// "quantitatively evaluating the potential performance benefit of
// alterations to the application, such as the data-partitioning
// algorithms". Compares partitioners by quality metrics and by measured
// iteration time on the simulated cluster.
package main

import (
	"fmt"
	"log"

	"krak/pkg/krak"
)

func main() {
	machine := krak.QsNetCluster()
	const p = 128

	fmt.Printf("Medium deck on %d PEs:\n\n", p)
	fmt.Println("  partitioner       edge cut  imbalance  max-nbrs  iteration(ms)")
	for _, name := range []string{"multilevel", "rcb", "strips", "random"} {
		sc, err := krak.NewScenario(
			krak.WithDeck("medium"),
			krak.WithPE(p),
			krak.WithPartitioner(name),
			krak.WithIterations(5),
		)
		if err != nil {
			log.Fatal(err)
		}
		s, err := krak.NewSession(machine, sc)
		if err != nil {
			log.Fatal(err)
		}
		meas, err := s.Simulate()
		if err != nil {
			log.Fatal(err)
		}
		q := meas.Partition
		fmt.Printf("  %-16s  %8d  %9.3f  %8d  %12.1f\n",
			q.Algorithm, q.EdgeCut, q.Imbalance, q.MaxNeighbors, meas.TotalSeconds*1e3)
	}
	fmt.Println("\nThe METIS-style multilevel partitioner minimizes the edge cut and the")
	fmt.Println("iteration time; strips inflate boundaries and random partitioning is")
	fmt.Println("catastrophic for boundary-exchange traffic.")
}
