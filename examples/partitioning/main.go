// Partitioning study: the use case from the paper's introduction —
// "quantitatively evaluating the potential performance benefit of
// alterations to the application, such as the data-partitioning
// algorithms". Compares partitioners by quality metrics and by measured
// iteration time on the simulated cluster.
package main

import (
	"fmt"
	"log"

	"krak/internal/cluster"
	"krak/internal/compute"
	"krak/internal/experiments"
	"krak/internal/mesh"
	"krak/internal/partition"
)

func main() {
	env := experiments.NewEnv()
	deck, err := env.Deck(mesh.Medium)
	if err != nil {
		log.Fatal(err)
	}
	g := partition.FromMesh(deck.Mesh)
	const p = 128

	cfg := cluster.Config{Net: env.Net, Costs: compute.ES45()}
	fmt.Printf("Medium deck (%d cells) on %d PEs:\n\n", deck.Mesh.NumCells(), p)
	fmt.Println("  partitioner       edge cut  imbalance  max-nbrs  iteration(ms)")
	for _, pr := range []partition.Partitioner{
		partition.NewMultilevel(1),
		partition.RCB{},
		partition.Strips{},
		partition.Random{Seed: 1},
	} {
		q, part, err := partition.Evaluate(pr, g, p)
		if err != nil {
			log.Fatal(err)
		}
		sum, err := mesh.Summarize(deck.Mesh, part, p)
		if err != nil {
			log.Fatal(err)
		}
		_, mean, err := cluster.SimulateIterations(sum, cfg, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s  %8d  %9.3f  %8d  %12.1f\n",
			q.Algorithm, q.EdgeCut, q.Imbalance, sum.MaxNeighbors(), mean*1e3)
	}
	fmt.Println("\nThe METIS-style multilevel partitioner minimizes the edge cut and the")
	fmt.Println("iteration time; strips inflate boundaries and random partitioning is")
	fmt.Println("catastrophic for boundary-exchange traffic.")
}
