// Machine what-if: the procurement question that motivates analytic
// performance models — how would Krak's iteration time change on a
// different interconnect, and where does the compute/communication
// crossover move? Evaluated entirely with the calibrated model, then
// cross-checked against the simulated cluster.
package main

import (
	"fmt"
	"log"

	"krak/internal/cluster"
	"krak/internal/compute"
	"krak/internal/core"
	"krak/internal/experiments"
	"krak/internal/mesh"
	"krak/internal/netmodel"
)

func main() {
	env := experiments.NewEnv()
	deck, err := env.Deck(mesh.Large)
	if err != nil {
		log.Fatal(err)
	}
	cells := deck.Mesh.NumCells()
	cal, err := env.ContrivedCalibration()
	if err != nil {
		log.Fatal(err)
	}

	nets := []*netmodel.Model{netmodel.GigE(), netmodel.QsNetI(), netmodel.Infiniband()}
	fmt.Printf("Large deck (%d cells): predicted iteration time (ms) by interconnect\n\n", cells)
	fmt.Printf("  %6s  %18s  %18s  %18s\n", "PEs", nets[0].Name(), nets[1].Name(), nets[2].Name())
	for _, p := range []int{64, 128, 256, 512, 1024} {
		fmt.Printf("  %6d", p)
		for _, net := range nets {
			model := core.NewGeneral(cal, net, core.Homogeneous)
			pred, err := model.Predict(cells, p)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %18.1f", pred.Total*1e3)
		}
		fmt.Println()
	}

	// Cross-check one point per network against the simulated platform.
	fmt.Println("\nCross-check at 512 PEs (model vs simulated cluster):")
	sum, err := env.Partition(deck, 512)
	if err != nil {
		log.Fatal(err)
	}
	for _, net := range nets {
		model := core.NewGeneral(cal, net, core.Homogeneous)
		pred, err := model.Predict(cells, 512)
		if err != nil {
			log.Fatal(err)
		}
		_, meas, err := cluster.SimulateIterations(sum, cluster.Config{Net: net, Costs: compute.ES45()}, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-24s model %6.1f ms, simulated %6.1f ms (%+.1f%%)\n",
			net.Name(), pred.Total*1e3, meas*1e3, (meas-pred.Total)/meas*100)
	}
	fmt.Println("\nCommunication-bound at scale on GigE; QsNet and InfiniBand stay")
	fmt.Println("compute-dominated — the quantitative form of the procurement answer.")
}
