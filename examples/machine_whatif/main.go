// Machine what-if: the procurement question that motivates analytic
// performance models — how would Krak's iteration time change on a
// different interconnect, and where does the compute/communication
// crossover move? Evaluated entirely with the calibrated model, then
// cross-checked against the simulated cluster.
package main

import (
	"fmt"
	"log"

	"krak/pkg/krak"
)

func main() {
	machines := []*krak.Machine{krak.GigECluster(), krak.QsNetCluster(), krak.InfinibandCluster()}

	fmt.Println("Large deck: predicted iteration time (ms) by interconnect")
	fmt.Printf("\n  %6s", "PEs")
	for _, m := range machines {
		fmt.Printf("  %24s", m.NetworkName())
	}
	fmt.Println()
	for _, p := range []int{64, 128, 256, 512, 1024} {
		fmt.Printf("  %6d", p)
		for _, m := range machines {
			fmt.Printf("  %24.1f", predict(m, p).TotalSeconds*1e3)
		}
		fmt.Println()
	}

	// Cross-check one point per network against the simulated platform.
	fmt.Println("\nCross-check at 512 PEs (model vs simulated cluster):")
	for _, m := range machines {
		pred := predict(m, 512)
		sc, err := krak.NewScenario(krak.WithDeck("large"), krak.WithPE(512), krak.WithIterations(3))
		if err != nil {
			log.Fatal(err)
		}
		s, err := krak.NewSession(m, sc)
		if err != nil {
			log.Fatal(err)
		}
		meas, err := s.Simulate()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-24s model %6.1f ms, simulated %6.1f ms (%+.1f%%)\n",
			m.NetworkName(), pred.TotalSeconds*1e3, meas.TotalSeconds*1e3,
			(meas.TotalSeconds-pred.TotalSeconds)/meas.TotalSeconds*100)
	}
	fmt.Println("\nCommunication-bound at scale on GigE; QsNet and InfiniBand stay")
	fmt.Println("compute-dominated — the quantitative form of the procurement answer.")
}

func predict(m *krak.Machine, p int) *krak.Result {
	sc, err := krak.NewScenario(
		krak.WithDeck("large"),
		krak.WithPE(p),
		krak.WithModel(krak.GeneralHomogeneous),
	)
	if err != nil {
		log.Fatal(err)
	}
	s, err := krak.NewSession(m, sc)
	if err != nil {
		log.Fatal(err)
	}
	pred, err := s.Predict()
	if err != nil {
		log.Fatal(err)
	}
	return pred
}
