// Hydro demo: run the actual Lagrangian hydrodynamics mini-app (the Krak
// stand-in) on a small layered cylinder — detonation, shock into the
// aluminum/foam layers — serially and on 4 goroutine ranks, verifying the
// two agree and showing the per-phase wall-clock profile that motivates
// the paper's phase-by-phase cost model.
package main

import (
	"fmt"
	"log"

	"krak/pkg/krak"
)

func main() {
	machine := krak.QsNetCluster()
	const steps = 150

	serial := runHydro(machine, steps, 1)
	sd := serial.Hydro
	fmt.Printf("Serial run, %d cells, %d steps to t=%.4f:\n", serial.Cells, steps, sd.Time)
	fmt.Printf("  burned %d HE cells, released %.4f energy\n", sd.BurnedCells, sd.EnergyReleased)
	fmt.Printf("  internal %.4f + kinetic %.4f = total %.4f\n",
		sd.InternalEnergy, sd.KineticEnergy, sd.InternalEnergy+sd.KineticEnergy)
	fmt.Printf("  peak pressure %.3f, min cell volume %.2e\n\n", sd.MaxPressure, sd.MinVolume)

	// The same problem on 4 ranks over the goroutine MPI runtime.
	parallel := runHydro(machine, steps, 4)
	pd := parallel.Hydro
	fmt.Printf("Parallel run on %d ranks:\n", pd.Ranks)
	fmt.Printf("  internal %.4f + kinetic %.4f (serial: %.4f + %.4f)\n",
		pd.InternalEnergy, pd.KineticEnergy, sd.InternalEnergy, sd.KineticEnergy)
	fmt.Printf("  burned cells %d (serial %d)\n\n", pd.BurnedCells, sd.BurnedCells)

	fmt.Println("Serial per-phase profile (full rendering):")
	fmt.Print(serial.Render())
	fmt.Println("\nPhases 3 and 6 (EOS/forces and accelerations) dominate computation,")
	fmt.Println("matching the weighting the performance model's cost tables assume.")
}

func runHydro(m *krak.Machine, steps, ranks int) *krak.Result {
	sc, err := krak.NewScenario(
		krak.WithDeckDims(40, 20),
		krak.WithSteps(steps),
		krak.WithRanks(ranks),
	)
	if err != nil {
		log.Fatal(err)
	}
	s, err := krak.NewSession(m, sc)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.RunHydro()
	if err != nil {
		log.Fatal(err)
	}
	return res
}
