// Hydro demo: run the actual Lagrangian hydrodynamics mini-app (the Krak
// stand-in) on a small layered cylinder — detonation, shock into the
// aluminum/foam layers — serially and on 4 goroutine ranks, verifying the
// two agree and showing the per-phase wall-clock profile that motivates
// the paper's phase-by-phase cost model.
package main

import (
	"fmt"
	"log"

	"krak/internal/hydro"
	"krak/internal/mesh"
	"krak/internal/partition"
	"krak/internal/textplot"
)

func main() {
	deck, err := mesh.BuildLayeredDeck(40, 20)
	if err != nil {
		log.Fatal(err)
	}
	const steps = 150

	state, timers, err := hydro.RunSerial(deck, steps, hydro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sd := state.Diag()
	fmt.Printf("Serial run, %d cells, %d steps to t=%.4f:\n", deck.Mesh.NumCells(), steps, sd.Time)
	fmt.Printf("  burned %d/%d HE cells, released %.4f energy\n",
		sd.BurnedCells, deck.Mesh.MaterialCounts()[mesh.HEGas], sd.EnergyReleased)
	fmt.Printf("  internal %.4f + kinetic %.4f = total %.4f (input+released %.4f)\n",
		sd.InternalEnergy, sd.KineticEnergy, sd.TotalEnergy(),
		sd.EnergyReleased+8.9e-7)
	fmt.Printf("  peak pressure %.3f, min cell volume %.2e\n\n", sd.MaxPressure, sd.MinVolume)

	// The same problem on 4 ranks over the goroutine MPI runtime.
	g := partition.FromMesh(deck.Mesh)
	part, err := partition.NewMultilevel(1).Partition(g, 4)
	if err != nil {
		log.Fatal(err)
	}
	res, err := hydro.RunParallel(deck, part, 4, steps, hydro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	pd := res.Diag
	fmt.Printf("Parallel run on 4 ranks:\n")
	fmt.Printf("  internal %.4f + kinetic %.4f (serial: %.4f + %.4f)\n",
		pd.InternalEnergy, pd.KineticEnergy, sd.InternalEnergy, sd.KineticEnergy)
	fmt.Printf("  burned cells %d (serial %d)\n\n", pd.BurnedCells, sd.BurnedCells)

	labels := make([]string, len(timers))
	vals := make([]float64, len(timers))
	for i := range timers {
		labels[i] = fmt.Sprintf("phase %2d", i+1)
		vals[i] = timers[i] * 1e3
	}
	fmt.Print(textplot.Bars("Serial wall-clock per phase (ms accumulated over the run):", labels, vals, 40))
	fmt.Println("\nPhases 3 and 6 (EOS/forces and accelerations) dominate computation,")
	fmt.Println("matching the weighting the performance model's cost tables assume.")
}
