// Calibration pipeline: the full model-zoo lifecycle through the
// façade. A "lab" machine defined by a machine file generates
// measurements; auto-selection cross-validates every candidate timing
// form and reports the scoreboard; fresh measurements from the same
// machine append quietly; and measurements taken after a simulated
// network downgrade trip the drift check — the moment a stored
// calibration stops describing the hardware it was fitted on.
//
// Run from anywhere:
//
//	go run ./examples/calibration_pipeline
package main

import (
	"context"
	"fmt"
	"log"

	"krak/pkg/krak"
)

const labMachine = `machine lab
network lab-net
segment 0 20 200
compute-scale 1.7
quick
`

// downgraded is the same lab after a switch failure forced traffic onto
// a fallback network: 10x the latency, a fifth of the bandwidth.
const downgraded = `machine lab-degraded
network fallback-net
segment 0 200 40
compute-scale 1.7
quick
`

// measure generates a synthetic measurement dataset from a machine file:
// noiseless analytic-model runs over a (deck, PEs) grid.
func measure(machineFile string, decks []string, pes []int) (*krak.Dataset, error) {
	m, err := krak.LoadMachine([]byte(machineFile))
	if err != nil {
		return nil, err
	}
	sc, err := krak.NewScenario(krak.WithModel(krak.GeneralHeterogeneous))
	if err != nil {
		return nil, err
	}
	s, err := krak.NewSession(m, sc)
	if err != nil {
		return nil, err
	}
	return s.SynthesizeDataset(context.Background(), krak.SweepPredict, decks, pes)
}

func main() {
	ctx := context.Background()

	base, err := measure(labMachine, []string{"small", "figure2"}, []int{2, 4, 8, 16, 32})
	if err != nil {
		log.Fatal(err)
	}
	freshSame, err := measure(labMachine, []string{"small"}, []int{3, 6, 12, 24})
	if err != nil {
		log.Fatal(err)
	}
	freshMoved, err := measure(downgraded, []string{"small"}, []int{3, 6, 12, 24})
	if err != nil {
		log.Fatal(err)
	}

	// Calibrate against the stock baseline with automatic form selection:
	// every registered form is scored on the same seeded folds.
	m, err := krak.NewMachine(krak.WithQuick())
	if err != nil {
		log.Fatal(err)
	}
	sc, err := krak.NewScenario(krak.WithModel(krak.GeneralHeterogeneous))
	if err != nil {
		log.Fatal(err)
	}
	s, err := krak.NewSession(m, sc)
	if err != nil {
		log.Fatal(err)
	}
	cr, err := s.Calibrate(ctx, base, krak.CalibrateOptions{Form: krak.FormAuto, Folds: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== Model zoo (%d candidate forms; see `krak machines -forms`) ==\n", len(krak.ModelForms()))
	for _, row := range cr.Scoreboard {
		note := ""
		if row.Selected {
			note = "  <- selected"
		}
		if row.Error != "" {
			note = "  (" + row.Error + ")"
		}
		fmt.Printf("  %-10s cv-rmse %8.4g s%s\n", row.Form, row.CVRMSESeconds, note)
	}
	fmt.Printf("winner: %s, fingerprint %s\n\n", cr.Form, cr.FittedFingerprint)

	// Append fresh measurements from the same machine: the merged refit's
	// drift check stays inside the stored fit's error band.
	same, err := s.CalibrateAppend(ctx, base, freshSame, krak.CalibrateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== Append: %d fresh runs from the same lab ==\n", same.Drift.FreshObservations)
	fmt.Printf("  rel RMS %.3g vs band %.3g -> flagged=%v\n\n",
		same.Drift.FreshRelRMS, same.Drift.Band, same.Drift.Flagged)

	// Append measurements taken after the network downgrade: the fresh
	// residuals leave the band and the drift flag trips.
	moved, err := s.CalibrateAppend(ctx, base, freshMoved, krak.CalibrateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== Append: %d runs after the network downgrade ==\n", moved.Drift.FreshObservations)
	fmt.Printf("  rel RMS %.3g vs band %.3g -> flagged=%v\n",
		moved.Drift.FreshRelRMS, moved.Drift.Band, moved.Drift.Flagged)
	if !moved.Drift.Flagged || same.Drift.Flagged {
		log.Fatal("drift detection gave the wrong verdicts")
	}
	fmt.Println("\nServed, the same lifecycle is POST /v1/machines/{fp} to register,")
	fmt.Println("POST /v1/calibrate/append to extend, GET /v1/machines/{fp} for history.")
}
