package krak_test

import (
	"context"
	"fmt"
	"log"

	"krak/pkg/krak"
)

// ExampleSession_Sweep evaluates the analytic model across a grid of
// processor counts concurrently, with the grid points sharing the
// machine's memoized decks and calibrations.
func ExampleSession_Sweep() {
	m, err := krak.NewMachine(krak.WithQuick(), krak.WithParallelism(4))
	if err != nil {
		log.Fatal(err)
	}
	base, err := krak.NewScenario(krak.WithDeck("small"))
	if err != nil {
		log.Fatal(err)
	}
	s, err := krak.NewSession(m, base)
	if err != nil {
		log.Fatal(err)
	}

	var grid []*krak.Scenario
	for _, pe := range []int{8, 16, 32} {
		sc, err := krak.NewScenario(krak.WithDeck("small"), krak.WithPE(pe))
		if err != nil {
			log.Fatal(err)
		}
		grid = append(grid, sc)
	}

	sr, err := s.Sweep(context.Background(), krak.SweepPredict, grid)
	if err != nil {
		log.Fatal(err)
	}
	for _, pt := range sr.Points {
		fmt.Printf("point %d: deck %s on %d PEs (%s model)\n", pt.Index, pt.Deck, pt.PEs, pt.Model)
	}
	// Output:
	// point 0: deck small on 8 PEs (general-homo model)
	// point 1: deck small on 16 PEs (general-homo model)
	// point 2: deck small on 32 PEs (general-homo model)
}

// ExampleWithParallelism pins the worker-pool width a machine uses for
// Sweep and Experiments; 1 forces fully serial execution.
func ExampleWithParallelism() {
	m, err := krak.NewMachine(krak.WithQuick(), krak.WithParallelism(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(m.Parallelism())
	// Output:
	// 2
}
