package krak

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"

	"krak/internal/cluster"
	"krak/internal/core"
	"krak/internal/experiments"
	"krak/internal/mesh"
)

// quickSession builds a scaled-down session for the given options.
func quickSession(t *testing.T, opts ...ScenarioOption) *Session {
	t.Helper()
	m, err := NewMachine(WithQuick())
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewScenario(opts...)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(m, sc)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPredictMatchesCoreGeneral asserts the façade is a zero-cost wrapper:
// Predict() through pkg/krak equals internal/core called directly with an
// identically configured environment.
func TestPredictMatchesCoreGeneral(t *testing.T) {
	s := quickSession(t, WithDeck("medium"), WithPE(64), WithModel(GeneralHomogeneous))
	got, err := s.Predict()
	if err != nil {
		t.Fatal(err)
	}

	env := experiments.NewQuickEnv()
	d, err := env.Deck(mesh.Medium)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := env.ContrivedCalibration()
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.NewGeneral(cal, env.Net, core.Homogeneous).Predict(d.Mesh.NumCells(), 64)
	if err != nil {
		t.Fatal(err)
	}

	if math.Abs(got.TotalSeconds-want.Total) > 1e-15 {
		t.Errorf("façade total %.9g != core total %.9g", got.TotalSeconds, want.Total)
	}
	if len(got.Phases) != len(want.PhaseCompute) {
		t.Fatalf("façade has %d phases, core has %d", len(got.Phases), len(want.PhaseCompute))
	}
	for i, ph := range got.Phases {
		if math.Abs(ph.Compute-want.PhaseCompute[i]) > 1e-15 ||
			math.Abs(ph.PointToPoint-want.PhaseP2P[i]) > 1e-15 ||
			math.Abs(ph.Collective-want.PhaseCollective[i]) > 1e-15 {
			t.Errorf("phase %d: façade (%g,%g,%g) != core (%g,%g,%g)", i+1,
				ph.Compute, ph.PointToPoint, ph.Collective,
				want.PhaseCompute[i], want.PhaseP2P[i], want.PhaseCollective[i])
		}
	}
}

// TestPredictMatchesCoreMeshSpecific does the same for the mesh-specific
// variant, including the deck-calibration path.
func TestPredictMatchesCoreMeshSpecific(t *testing.T) {
	s := quickSession(t, WithDeck("small"), WithPE(8), WithModel(MeshSpecific),
		WithCalibrationPEs(2, 4))
	got, err := s.Predict()
	if err != nil {
		t.Fatal(err)
	}

	env := experiments.NewQuickEnv()
	d, err := env.Deck(mesh.Small)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := env.DeckCalibration(d, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := env.Partition(d, 8)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.NewMeshSpecific(cal, env.Net).Predict(sum)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.TotalSeconds-want.Total) > 1e-15 {
		t.Errorf("façade total %.9g != core total %.9g", got.TotalSeconds, want.Total)
	}
}

// TestSimulateMatchesCluster asserts Simulate() reproduces the simulator's
// numbers exactly.
func TestSimulateMatchesCluster(t *testing.T) {
	s := quickSession(t, WithDeck("small"), WithPE(8), WithIterations(2))
	got, err := s.Simulate()
	if err != nil {
		t.Fatal(err)
	}

	env := experiments.NewQuickEnv()
	d, err := env.Deck(mesh.Small)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := env.Partition(d, 8)
	if err != nil {
		t.Fatal(err)
	}
	_, mean, err := cluster.SimulateIterations(sum, cluster.Config{Net: env.Net, Costs: env.Costs}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.TotalSeconds-mean) > 1e-15 {
		t.Errorf("façade mean %.9g != cluster mean %.9g", got.TotalSeconds, mean)
	}
	if got.Iterations == nil || got.Iterations.Count != 2 {
		t.Errorf("iteration stats missing or wrong: %+v", got.Iterations)
	}
}

// TestResultJSONMatchesRendering asserts the --json path: MarshalJSON
// emits valid JSON whose headline number matches the text rendering.
func TestResultJSONMatchesRendering(t *testing.T) {
	s := quickSession(t, WithDeck("medium"), WithPE(128))
	res, err := s.Predict()
	if err != nil {
		t.Fatal(err)
	}

	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded["kind"] != "predict" {
		t.Errorf("kind = %v", decoded["kind"])
	}
	if decoded["schema"] != ResultSchema {
		t.Errorf("schema = %v, want %q", decoded["schema"], ResultSchema)
	}
	if decoded["pes"] != float64(128) {
		t.Errorf("pes = %v", decoded["pes"])
	}
	total, ok := decoded["total_s"].(float64)
	if !ok || total <= 0 {
		t.Fatalf("total_s = %v", decoded["total_s"])
	}
	phs, ok := decoded["phases"].([]any)
	if !ok || len(phs) != 15 {
		t.Fatalf("phases = %T len %d", decoded["phases"], len(phs))
	}

	text := res.Render()
	headline := fmt.Sprintf("Predicted iteration time: %.1f ms", total*1e3)
	if !strings.Contains(text, headline) {
		t.Errorf("rendering does not contain %q:\n%s", headline, text)
	}
	if !strings.Contains(text, "128 PEs") {
		t.Errorf("rendering does not mention the PE count:\n%s", text)
	}
}

// TestHydroSerialParallelAgree runs the mini-app both ways through the
// façade and checks the conserved quantities agree.
func TestHydroSerialParallelAgree(t *testing.T) {
	serial := quickSession(t, WithDeckDims(20, 10), WithSteps(25), WithRanks(1))
	sres, err := serial.RunHydro()
	if err != nil {
		t.Fatal(err)
	}
	parallel := quickSession(t, WithDeckDims(20, 10), WithSteps(25), WithRanks(2))
	pres, err := parallel.RunHydro()
	if err != nil {
		t.Fatal(err)
	}
	sd, pd := sres.Hydro, pres.Hydro
	if sd.Cycle != 25 || pd.Cycle != 25 {
		t.Fatalf("cycles: serial %d, parallel %d", sd.Cycle, pd.Cycle)
	}
	if math.Abs(sd.InternalEnergy-pd.InternalEnergy) > 1e-9 ||
		math.Abs(sd.KineticEnergy-pd.KineticEnergy) > 1e-9 {
		t.Errorf("energies diverge: serial (%g, %g), parallel (%g, %g)",
			sd.InternalEnergy, sd.KineticEnergy, pd.InternalEnergy, pd.KineticEnergy)
	}
	if sd.BurnedCells != pd.BurnedCells {
		t.Errorf("burned cells: serial %d, parallel %d", sd.BurnedCells, pd.BurnedCells)
	}
}

// TestHydroProgressCallback checks the serial progress hook fires on the
// requested interval and the run's result is unchanged by observing it.
func TestHydroProgressCallback(t *testing.T) {
	var ticks []HydroTick
	observed := quickSession(t, WithDeckDims(20, 10), WithSteps(20),
		WithHydroProgress(5, func(tk HydroTick) { ticks = append(ticks, tk) }))
	ores, err := observed.RunHydro()
	if err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 4 {
		t.Fatalf("got %d ticks, want 4", len(ticks))
	}
	for i, tk := range ticks {
		if tk.Cycle != (i+1)*5 {
			t.Errorf("tick %d at cycle %d, want %d", i, tk.Cycle, (i+1)*5)
		}
		if tk.DT <= 0 {
			t.Errorf("tick %d has non-positive dt %g", i, tk.DT)
		}
	}
	plain := quickSession(t, WithDeckDims(20, 10), WithSteps(20))
	pres, err := plain.RunHydro()
	if err != nil {
		t.Fatal(err)
	}
	if ores.Hydro.InternalEnergy != pres.Hydro.InternalEnergy ||
		ores.Hydro.Cycle != pres.Hydro.Cycle {
		t.Errorf("progress observation changed the run: %+v vs %+v", ores.Hydro, pres.Hydro)
	}
}

// TestPartitionReport sanity-checks the Partition() result against the
// deck's totals.
func TestPartitionReport(t *testing.T) {
	s := quickSession(t, WithDeck("small"), WithPE(4))
	res, err := s.Partition()
	if err != nil {
		t.Fatal(err)
	}
	p := res.Partition
	if p == nil {
		t.Fatal("no partition report")
	}
	if len(p.PerPE) != 4 {
		t.Fatalf("per-PE rows = %d", len(p.PerPE))
	}
	cells := 0
	for _, st := range p.PerPE {
		cells += st.Cells
	}
	if cells != res.Cells {
		t.Errorf("per-PE cells sum %d != deck cells %d", cells, res.Cells)
	}
	if p.EdgeCut <= 0 || p.MaxNeighbors <= 0 {
		t.Errorf("degenerate quality: edge cut %d, max neighbors %d", p.EdgeCut, p.MaxNeighbors)
	}
	if p.Map == "" {
		t.Error("small deck should render a subgrid map")
	}
}

// TestExperimentThroughFacade regenerates one cheap experiment end to end.
func TestExperimentThroughFacade(t *testing.T) {
	s := quickSession(t)
	res, err := s.Experiment("table1")
	if err != nil {
		t.Fatal(err)
	}
	e := res.Experiment
	if e == nil || e.ID != "table1" || len(e.Rows) != 15 {
		t.Fatalf("unexpected experiment report: %+v", e)
	}
	if !strings.Contains(res.Render(), "table1") {
		t.Error("rendering does not mention the experiment id")
	}
}
