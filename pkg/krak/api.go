package krak

import (
	"encoding/json"
	"fmt"
)

// This file defines the wire types of the `krak serve` HTTP API — the
// request bodies clients POST and the helpers that turn them into
// Machines and Scenarios. They live in pkg/krak (not internal/server) so
// clients and the server share one schema: a Go client builds a
// PredictRequest, the server decodes the same struct, and the response
// is a Result whose JSON is byte-identical to `krak predict --json`
// (Result.MarshalJSON stamps ResultSchema; Result.UnmarshalJSON rejects
// anything else with ErrSchema).

// MachineSpec is the wire form of a Machine: every field is optional and
// the zero value means the paper's default platform (QsNet-I, seed 1,
// full-size decks).
type MachineSpec struct {
	// Interconnect selects the network model: "qsnet" (default), "gige",
	// or "infiniband".
	Interconnect string `json:"interconnect,omitempty"`

	// Seed is the partitioner seed; 0 means the default (1).
	Seed uint64 `json:"seed,omitempty"`

	// Repeats is the measurement repeat count; 0 means the machine
	// default (5, or 2 under Quick).
	Repeats int `json:"repeats,omitempty"`

	// Quick selects scaled-down decks and calibrations, mirroring the
	// CLI's -quick flag.
	Quick bool `json:"quick,omitempty"`

	// SerializeSends disables message overlap in the simulator.
	SerializeSends bool `json:"serialize_sends,omitempty"`
}

// Normalized returns the spec with defaults filled in, so two specs that
// mean the same machine compare equal — the identity a serving cache
// keys on.
func (ms MachineSpec) Normalized() MachineSpec {
	if ms.Interconnect == "" {
		ms.Interconnect = "qsnet"
	}
	if ms.Seed == 0 {
		ms.Seed = 1
	}
	return ms
}

// Options translates the spec into NewMachine options. Validation (an
// unknown interconnect, a non-positive repeat count) surfaces from
// NewMachine as the usual typed errors.
func (ms MachineSpec) Options() []MachineOption {
	ms = ms.Normalized()
	opts := []MachineOption{
		WithInterconnect(ms.Interconnect),
		WithSeed(ms.Seed),
	}
	if ms.Quick {
		opts = append(opts, WithQuick())
	}
	if ms.Repeats != 0 {
		opts = append(opts, WithRepeats(ms.Repeats))
	}
	if ms.SerializeSends {
		opts = append(opts, WithSerializedSends())
	}
	return opts
}

// PredictRequest is the body of POST /v1/predict. The zero value asks
// the CLI's default question: the medium deck on 128 processors under
// the general/homogeneous model.
type PredictRequest struct {
	Deck    string      `json:"deck,omitempty"`  // small|medium|large|figure2 (default medium)
	PEs     int         `json:"pes,omitempty"`   // default 128
	Model   string      `json:"model,omitempty"` // general-homo|general-het|mesh-specific (default general-homo)
	Machine MachineSpec `json:"machine,omitempty"`
}

// Normalized returns the request with defaults filled in.
func (r PredictRequest) Normalized() PredictRequest {
	if r.Deck == "" {
		r.Deck = "medium"
	}
	if r.PEs == 0 {
		r.PEs = 128
	}
	if r.Model == "" {
		r.Model = "general-homo"
	}
	r.Machine = r.Machine.Normalized()
	return r
}

// Scenario validates the request and builds the Scenario it describes.
func (r PredictRequest) Scenario() (*Scenario, error) {
	r = r.Normalized()
	model, err := ParseModel(r.Model)
	if err != nil {
		return nil, err
	}
	return NewScenario(WithDeck(r.Deck), WithPE(r.PEs), WithModel(model))
}

// SimulateRequest is the body of POST /v1/simulate.
type SimulateRequest struct {
	Deck        string      `json:"deck,omitempty"`        // default medium
	PEs         int         `json:"pes,omitempty"`         // default 128
	Iterations  int         `json:"iterations,omitempty"`  // default: the machine's repeat count
	Partitioner string      `json:"partitioner,omitempty"` // multilevel|rcb|sfc|strips|random (default multilevel)
	Machine     MachineSpec `json:"machine,omitempty"`
}

// Normalized returns the request with defaults filled in.
func (r SimulateRequest) Normalized() SimulateRequest {
	if r.Deck == "" {
		r.Deck = "medium"
	}
	if r.PEs == 0 {
		r.PEs = 128
	}
	if r.Partitioner == "" {
		r.Partitioner = "multilevel"
	}
	r.Machine = r.Machine.Normalized()
	return r
}

// Scenario validates the request and builds the Scenario it describes.
func (r SimulateRequest) Scenario() (*Scenario, error) {
	r = r.Normalized()
	opts := []ScenarioOption{
		WithDeck(r.Deck),
		WithPE(r.PEs),
		WithPartitioner(r.Partitioner),
	}
	if r.Iterations != 0 {
		opts = append(opts, WithIterations(r.Iterations))
	}
	return NewScenario(opts...)
}

// SweepRequest is the body of POST /v1/sweep: the cross product of Decks
// and PEs evaluated concurrently on the serving machine's worker pool,
// decks major — the same grid `krak sweep` builds from its flags.
type SweepRequest struct {
	Op          string      `json:"op,omitempty"`          // predict|simulate (default predict)
	Decks       []string    `json:"decks,omitempty"`       // default ["medium"]
	PEs         []int       `json:"pes,omitempty"`         // default [32,64,128,256]
	Model       string      `json:"model,omitempty"`       // for predict points
	Partitioner string      `json:"partitioner,omitempty"` // for simulate points
	Iterations  int         `json:"iterations,omitempty"`  // for simulate points
	Machine     MachineSpec `json:"machine,omitempty"`
}

// Normalized returns the request with defaults filled in.
func (r SweepRequest) Normalized() SweepRequest {
	if r.Op == "" {
		r.Op = "predict"
	}
	if len(r.Decks) == 0 {
		r.Decks = []string{"medium"}
	}
	if len(r.PEs) == 0 {
		r.PEs = []int{32, 64, 128, 256}
	}
	if r.Model == "" {
		r.Model = "general-homo"
	}
	if r.Partitioner == "" {
		r.Partitioner = "multilevel"
	}
	r.Machine = r.Machine.Normalized()
	return r
}

// MaxSweepPoints bounds how many grid points one SweepRequest may ask
// for, so a hostile request body cannot demand an unbounded amount of
// work.
const MaxSweepPoints = 4096

// Grid validates the request and builds its sweep operation and scenario
// grid (decks major, PEs minor).
func (r SweepRequest) Grid() (SweepOp, []*Scenario, error) {
	r = r.Normalized()
	op, err := ParseSweepOp(r.Op)
	if err != nil {
		return "", nil, err
	}
	model, err := ParseModel(r.Model)
	if err != nil {
		return "", nil, err
	}
	if r.Iterations < 0 {
		return "", nil, fmt.Errorf("%w: iterations %d", ErrBadOption, r.Iterations)
	}
	// Division, not multiplication, so the product cannot overflow int on
	// 32-bit platforms (Normalized guarantees both slices are non-empty).
	if len(r.PEs) > MaxSweepPoints/len(r.Decks) {
		return "", nil, fmt.Errorf("%w: sweep grid %dx%d exceeds %d points",
			ErrBadOption, len(r.Decks), len(r.PEs), MaxSweepPoints)
	}
	var grid []*Scenario
	for _, deck := range r.Decks {
		for _, pe := range r.PEs {
			opts := []ScenarioOption{
				WithDeck(deck),
				WithPE(pe),
				WithModel(model),
				WithPartitioner(r.Partitioner),
			}
			if r.Iterations > 0 {
				opts = append(opts, WithIterations(r.Iterations))
			}
			sc, err := NewScenario(opts...)
			if err != nil {
				return "", nil, err
			}
			grid = append(grid, sc)
		}
	}
	return op, grid, nil
}

// MachineInfo is one entry of GET /v1/machines: an interconnect preset
// the server can serve predictions for.
type MachineInfo struct {
	Interconnect string `json:"interconnect"`
	Network      string `json:"network"`
}

// ListMachines returns the interconnect presets in stable order.
func ListMachines() []MachineInfo {
	var out []MachineInfo
	for _, name := range []string{"qsnet", "gige", "infiniband"} {
		net, err := interconnectByName(name)
		if err != nil {
			panic(err) // unreachable: the list above is the registry
		}
		out = append(out, MachineInfo{Interconnect: name, Network: net.Name()})
	}
	return out
}

// UnmarshalJSON decodes a Result produced by MarshalJSON (the CLI's
// --json output and every `krak serve` response), rejecting payloads
// whose schema stamp is not ResultSchema with ErrSchema.
func (r *Result) UnmarshalJSON(data []byte) error {
	type alias Result
	aux := struct {
		Schema string `json:"schema"`
		*alias
	}{alias: (*alias)(r)}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	if aux.Schema != ResultSchema {
		return fmt.Errorf("%w: got %q, want %q", ErrSchema, aux.Schema, ResultSchema)
	}
	return nil
}

// UnmarshalJSON decodes a SweepResult produced by its MarshalJSON,
// rejecting payloads whose schema stamp is not SweepSchema with
// ErrSchema.
func (sr *SweepResult) UnmarshalJSON(data []byte) error {
	type alias SweepResult
	aux := struct {
		Schema string `json:"schema"`
		*alias
	}{alias: (*alias)(sr)}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	if aux.Schema != SweepSchema {
		return fmt.Errorf("%w: got %q, want %q", ErrSchema, aux.Schema, SweepSchema)
	}
	return nil
}
