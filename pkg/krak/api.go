package krak

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// This file defines the wire types of the `krak serve` HTTP API — the
// request bodies clients POST and the helpers that turn them into
// Machines and Scenarios. They live in pkg/krak (not internal/server) so
// clients and the server share one schema: a Go client builds a
// PredictRequest, the server decodes the same struct, and the response
// is a Result whose JSON is byte-identical to `krak predict --json`
// (Result.MarshalJSON stamps ResultSchema; Result.UnmarshalJSON rejects
// anything else with ErrSchema).

// MachineSpec is the wire and file form of a Machine: every field is
// optional and the zero value means the paper's default platform
// (QsNet-I, seed 1, full-size decks). Beyond the presets, a spec can
// describe an arbitrary cluster: a custom piecewise Network, a
// ComputeScale relative to the baseline cost tables, or a whole
// machine file embedded in File.
type MachineSpec struct {
	// Name is an optional display name (machine files' machine directive).
	Name string `json:"name,omitempty"`

	// Interconnect selects the network model: "qsnet" (default), "gige",
	// or "infiniband". Ignored when Network is set.
	Interconnect string `json:"interconnect,omitempty"`

	// Network, when non-nil, is a custom piecewise interconnect used in
	// place of an Interconnect preset — the form `krak calibrate` emits
	// and machine files' network/segment directives parse into.
	Network *NetworkSpec `json:"network,omitempty"`

	// Topology, when non-nil and not flat, refines the collective models
	// with the interconnect's physical shape (machine files' topology
	// directive). Orthogonal to Interconnect/Network: those set the
	// point-to-point cost tables, this sets the distance and contention
	// terms collectives pay on top.
	Topology *TopologySpec `json:"topology,omitempty"`

	// ComputeScale multiplies the machine's computation cost tables
	// relative to the ES45 baseline; 0 means 1 (the baseline rate).
	ComputeScale float64 `json:"compute_scale,omitempty"`

	// Seed is the partitioner seed; 0 means the default (1).
	Seed uint64 `json:"seed,omitempty"`

	// Repeats is the measurement repeat count; 0 means the machine
	// default (5, or 2 under Quick).
	Repeats int `json:"repeats,omitempty"`

	// Quick selects scaled-down decks and calibrations, mirroring the
	// CLI's -quick flag.
	Quick bool `json:"quick,omitempty"`

	// SerializeSends disables message overlap in the simulator.
	SerializeSends bool `json:"serialize_sends,omitempty"`

	// File, when non-empty, is the text of a machine file (the
	// ParseMachineFile format); the spec's other fields override the
	// file's directives. Resolve it with Resolved before comparing or
	// fingerprinting specs.
	File string `json:"file,omitempty"`
}

// Normalized returns the spec with defaults filled in, so two specs that
// mean the same machine compare equal — the identity a serving cache
// keys on. A spec with an embedded File is returned unchanged: filling
// defaults before Resolved runs would turn them into overrides of the
// file's directives.
func (ms MachineSpec) Normalized() MachineSpec {
	if ms.File != "" {
		return ms
	}
	if ms.Network != nil {
		// A custom network supersedes the preset entirely; clearing the
		// ignored Interconnect keeps two spellings of the same platform on
		// one fingerprint (and one slot of the serving machine cap).
		ms.Interconnect = ""
		if ms.Network.Name == "" {
			n := *ms.Network
			n.Name = "custom"
			ms.Network = &n
		}
	} else if ms.Interconnect == "" {
		ms.Interconnect = "qsnet"
	}
	if ms.Topology != nil {
		ms.Topology = ms.Topology.normalized()
	}
	if ms.Seed == 0 {
		ms.Seed = 1
	}
	if ms.ComputeScale == 0 {
		ms.ComputeScale = 1
	}
	return ms
}

// Resolved expands an embedded machine file: the File text is parsed
// (errors wrap ErrBadMachineSpec) and the spec's own explicitly-set
// fields override the file's directives, with an explicit Interconnect
// also discarding the file's custom network. Specs without a File are
// returned unchanged.
func (ms MachineSpec) Resolved() (MachineSpec, error) {
	if ms.File == "" {
		return ms, nil
	}
	base, err := ParseMachineFile([]byte(ms.File))
	if err != nil {
		return MachineSpec{}, err
	}
	if ms.Name != "" {
		base.Name = ms.Name
	}
	if ms.Interconnect != "" {
		base.Interconnect = ms.Interconnect
		base.Network = nil
	}
	if ms.Network != nil {
		base.Network = ms.Network
	}
	if ms.Topology != nil {
		base.Topology = ms.Topology
	}
	if ms.ComputeScale != 0 {
		base.ComputeScale = ms.ComputeScale
	}
	if ms.Seed != 0 {
		base.Seed = ms.Seed
	}
	if ms.Repeats != 0 {
		base.Repeats = ms.Repeats
	}
	if ms.Quick {
		base.Quick = true
	}
	if ms.SerializeSends {
		base.SerializeSends = true
	}
	return base, nil
}

// Fingerprint returns a content-derived identity of the spec: a hash of
// its normalized JSON form, stable across field ordering and default
// spelling, and blind to the cosmetic display Name (a rename is the
// same platform). The serving layer keys its machine cache on it, which
// is what lets calibrated and file-defined machines share the capped
// cache with the presets. Resolve embedded Files first; an unresolved
// File is fingerprinted as opaque text.
func (ms MachineSpec) Fingerprint() string {
	n := ms.Normalized()
	n.Name = ""
	b, err := json.Marshal(n)
	if err != nil {
		// Only non-finite floats (NaN scale, segment, or topology values —
		// already invalid as a machine) can fail Marshal; fall back to a
		// verbose but still deterministic pointer-free rendering rather
		// than panic (%#v on the struct itself would print the Network and
		// Topology pointers' addresses).
		var net NetworkSpec
		if n.Network != nil {
			net = *n.Network
		}
		var topo TopologySpec
		if n.Topology != nil {
			topo = *n.Topology
		}
		n.Network, n.Topology = nil, nil
		b = []byte(fmt.Sprintf("%#v|%#v|%#v", n, net, topo))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16])
}

// Options translates the spec into NewMachine options. Validation (an
// unknown interconnect, a malformed custom network or embedded file, a
// non-positive repeat count) surfaces from NewMachine as the usual
// typed errors.
func (ms MachineSpec) Options() []MachineOption {
	if ms.File != "" {
		r, err := ms.Resolved()
		if err != nil {
			return []MachineOption{func(*Machine) error { return err }}
		}
		return r.Options()
	}
	ms = ms.Normalized()
	var opts []MachineOption
	if ms.Network != nil {
		opts = append(opts, WithNetworkSpec(*ms.Network))
	} else {
		opts = append(opts, WithInterconnect(ms.Interconnect))
	}
	if ms.Topology != nil {
		opts = append(opts, WithTopologySpec(*ms.Topology))
	}
	opts = append(opts, WithSeed(ms.Seed))
	if ms.Name != "" {
		opts = append(opts, WithName(ms.Name))
	}
	if ms.ComputeScale != 1 {
		opts = append(opts, WithComputeScale(ms.ComputeScale))
	}
	if ms.Quick {
		opts = append(opts, WithQuick())
	}
	if ms.Repeats != 0 {
		opts = append(opts, WithRepeats(ms.Repeats))
	}
	if ms.SerializeSends {
		opts = append(opts, WithSerializedSends())
	}
	return opts
}

// PredictRequest is the body of POST /v1/predict. The zero value asks
// the CLI's default question: the medium deck on 128 processors under
// the general/homogeneous model.
type PredictRequest struct {
	Deck    string      `json:"deck,omitempty"`  // small|medium|large|figure2 (default medium)
	PEs     int         `json:"pes,omitempty"`   // default 128
	Model   string      `json:"model,omitempty"` // general-homo|general-het|mesh-specific (default general-homo)
	Machine MachineSpec `json:"machine,omitempty"`
}

// Normalized returns the request with defaults filled in.
func (r PredictRequest) Normalized() PredictRequest {
	if r.Deck == "" {
		r.Deck = "medium"
	}
	if r.PEs == 0 {
		r.PEs = 128
	}
	if r.Model == "" {
		r.Model = "general-homo"
	}
	r.Machine = r.Machine.Normalized()
	return r
}

// Scenario validates the request and builds the Scenario it describes.
func (r PredictRequest) Scenario() (*Scenario, error) {
	r = r.Normalized()
	model, err := ParseModel(r.Model)
	if err != nil {
		return nil, err
	}
	return NewScenario(WithDeck(r.Deck), WithPE(r.PEs), WithModel(model))
}

// CanonicalKey is the content-derived identity of the prediction this
// request asks for: the key the serving tier's response LRU and disk
// cache store the rendered body under, and the key the gateway hashes
// onto its replica ring — one definition, so a scenario always routes
// to the replica whose caches already hold it. The receiver is
// normalized first; callers that resolve the machine spec (server-side
// defaults, -quick) must do so before keying, as identical requests
// resolved differently are different content.
func (r PredictRequest) CanonicalKey() string {
	r = r.Normalized()
	return fmt.Sprintf("predict|%s|%d|%s|%s", r.Deck, r.PEs, r.Model, r.Machine.Fingerprint())
}

// SimulateRequest is the body of POST /v1/simulate.
type SimulateRequest struct {
	Deck        string      `json:"deck,omitempty"`        // default medium
	PEs         int         `json:"pes,omitempty"`         // default 128
	Iterations  int         `json:"iterations,omitempty"`  // default: the machine's repeat count
	Partitioner string      `json:"partitioner,omitempty"` // multilevel|rcb|sfc|strips|random (default multilevel)
	Machine     MachineSpec `json:"machine,omitempty"`
}

// Normalized returns the request with defaults filled in.
func (r SimulateRequest) Normalized() SimulateRequest {
	if r.Deck == "" {
		r.Deck = "medium"
	}
	if r.PEs == 0 {
		r.PEs = 128
	}
	if r.Partitioner == "" {
		r.Partitioner = "multilevel"
	}
	r.Machine = r.Machine.Normalized()
	return r
}

// Scenario validates the request and builds the Scenario it describes.
func (r SimulateRequest) Scenario() (*Scenario, error) {
	r = r.Normalized()
	opts := []ScenarioOption{
		WithDeck(r.Deck),
		WithPE(r.PEs),
		WithPartitioner(r.Partitioner),
	}
	if r.Iterations != 0 {
		opts = append(opts, WithIterations(r.Iterations))
	}
	return NewScenario(opts...)
}

// CanonicalKey is the content-derived cache/routing identity of this
// simulation; see PredictRequest.CanonicalKey for the contract.
func (r SimulateRequest) CanonicalKey() string {
	r = r.Normalized()
	return fmt.Sprintf("simulate|%s|%d|%d|%s|%s",
		r.Deck, r.PEs, r.Iterations, r.Partitioner, r.Machine.Fingerprint())
}

// SweepRequest is the body of POST /v1/sweep: the cross product of Decks
// and PEs evaluated concurrently on the serving machine's worker pool,
// decks major — the same grid `krak sweep` builds from its flags.
type SweepRequest struct {
	Op          string      `json:"op,omitempty"`          // predict|simulate (default predict)
	Decks       []string    `json:"decks,omitempty"`       // default ["medium"]
	PEs         []int       `json:"pes,omitempty"`         // default [32,64,128,256]
	Model       string      `json:"model,omitempty"`       // for predict points
	Partitioner string      `json:"partitioner,omitempty"` // for simulate points
	Iterations  int         `json:"iterations,omitempty"`  // for simulate points
	Machine     MachineSpec `json:"machine,omitempty"`
}

// Normalized returns the request with defaults filled in.
func (r SweepRequest) Normalized() SweepRequest {
	if r.Op == "" {
		r.Op = "predict"
	}
	if len(r.Decks) == 0 {
		r.Decks = []string{"medium"}
	}
	if len(r.PEs) == 0 {
		r.PEs = []int{32, 64, 128, 256}
	}
	if r.Model == "" {
		r.Model = "general-homo"
	}
	if r.Partitioner == "" {
		r.Partitioner = "multilevel"
	}
	r.Machine = r.Machine.Normalized()
	return r
}

// MaxSweepPoints bounds how many grid points one SweepRequest may ask
// for, so a hostile request body cannot demand an unbounded amount of
// work.
const MaxSweepPoints = 4096

// Grid validates the request and builds its sweep operation and scenario
// grid (decks major, PEs minor).
func (r SweepRequest) Grid() (SweepOp, []*Scenario, error) {
	r = r.Normalized()
	op, err := ParseSweepOp(r.Op)
	if err != nil {
		return "", nil, err
	}
	model, err := ParseModel(r.Model)
	if err != nil {
		return "", nil, err
	}
	if r.Iterations < 0 {
		return "", nil, fmt.Errorf("%w: iterations %d", ErrBadOption, r.Iterations)
	}
	// Division, not multiplication, so the product cannot overflow int on
	// 32-bit platforms (Normalized guarantees both slices are non-empty).
	if len(r.PEs) > MaxSweepPoints/len(r.Decks) {
		return "", nil, fmt.Errorf("%w: sweep grid %dx%d exceeds %d points",
			ErrBadOption, len(r.Decks), len(r.PEs), MaxSweepPoints)
	}
	var grid []*Scenario
	for _, deck := range r.Decks {
		for _, pe := range r.PEs {
			opts := []ScenarioOption{
				WithDeck(deck),
				WithPE(pe),
				WithModel(model),
				WithPartitioner(r.Partitioner),
			}
			if r.Iterations > 0 {
				opts = append(opts, WithIterations(r.Iterations))
			}
			sc, err := NewScenario(opts...)
			if err != nil {
				return "", nil, err
			}
			grid = append(grid, sc)
		}
	}
	return op, grid, nil
}

// SynthSpec asks the serving layer to self-generate a calibration
// dataset from the request's machine instead of being handed
// measurements: the (deck × PE) grid is measured through the simulator
// (op "simulate", the default — noisy, partition-aware "measured" times)
// or the analytic model (op "predict" — noiseless and exactly linear in
// the machine parameters).
type SynthSpec struct {
	Op    string   `json:"op,omitempty"`    // simulate (default) | predict
	Decks []string `json:"decks,omitempty"` // default ["small"]
	PEs   []int    `json:"pes,omitempty"`   // default [2,4,8,16,32]
}

// Normalized returns the spec with defaults filled in.
func (sy SynthSpec) Normalized() SynthSpec {
	if sy.Op == "" {
		sy.Op = "simulate"
	}
	if len(sy.Decks) == 0 {
		sy.Decks = []string{"small"}
	}
	if len(sy.PEs) == 0 {
		sy.PEs = []int{2, 4, 8, 16, 32}
	}
	return sy
}

// CalibrateRequest is the body of POST /v1/calibrate. Exactly one
// measurement source must be given: Dataset (a textual measurement file,
// the ParseDataset format), Observations (the same measurements in
// JSON), or Synth (self-generated runs on the request's machine).
type CalibrateRequest struct {
	Dataset      string        `json:"dataset,omitempty"`
	Observations []Observation `json:"observations,omitempty"`
	Synth        *SynthSpec    `json:"synth,omitempty"`

	// Folds enables k-fold cross-validation when >= 2.
	Folds int `json:"folds,omitempty"`

	// Form selects the timing-model form (see CalibrateOptions.Form);
	// empty means automatic selection.
	Form string `json:"form,omitempty"`

	// Model selects the feature model: general-homo (default) or
	// general-het.
	Model string `json:"model,omitempty"`

	Machine MachineSpec `json:"machine,omitempty"`
}

// Normalized returns the request with defaults filled in.
func (r CalibrateRequest) Normalized() CalibrateRequest {
	if r.Model == "" {
		r.Model = "general-homo"
	}
	if r.Synth != nil {
		sy := r.Synth.Normalized()
		r.Synth = &sy
	}
	r.Machine = r.Machine.Normalized()
	return r
}

// Scenario validates the request and builds the Scenario a calibrating
// Session uses (the feature-model choice).
func (r CalibrateRequest) Scenario() (*Scenario, error) {
	r = r.Normalized()
	model, err := ParseModel(r.Model)
	if err != nil {
		return nil, err
	}
	return NewScenario(WithModel(model))
}

// Materialize produces the request's dataset: parsing Dataset text,
// adopting Observations, or synthesizing measurements on the session's
// machine. Requests with zero or several sources return ErrCalibration.
func (r CalibrateRequest) Materialize(ctx context.Context, s *Session) (*Dataset, error) {
	r = r.Normalized()
	sources := 0
	if r.Dataset != "" {
		sources++
	}
	if len(r.Observations) > 0 {
		sources++
	}
	if r.Synth != nil {
		sources++
	}
	if sources != 1 {
		return nil, fmt.Errorf("%w: exactly one of dataset, observations, or synth must be given (got %d)",
			ErrCalibration, sources)
	}
	switch {
	case r.Dataset != "":
		return ParseDataset([]byte(r.Dataset))
	case len(r.Observations) > 0:
		return &Dataset{Name: "wire", Observations: r.Observations}, nil
	default:
		op, err := ParseSweepOp(r.Synth.Op)
		if err != nil {
			return nil, err
		}
		return s.SynthesizeDataset(ctx, op, r.Synth.Decks, r.Synth.PEs)
	}
}

// AppendRequest is the body of POST /v1/calibrate/append: fresh
// measurements to fold into the dataset stored for a registered machine
// (see Session.CalibrateAppend). Exactly one fresh source must be
// given: Dataset text or Observations.
type AppendRequest struct {
	// Fingerprint addresses the registered machine whose stored dataset
	// the fresh measurements extend.
	Fingerprint string `json:"fingerprint"`

	Dataset      string        `json:"dataset,omitempty"`
	Observations []Observation `json:"observations,omitempty"`

	// Folds enables k-fold cross-validation of the merged refit when
	// >= 2.
	Folds int `json:"folds,omitempty"`

	// Form selects the timing-model form (see CalibrateOptions.Form);
	// empty means automatic selection.
	Form string `json:"form,omitempty"`

	// Model selects the feature model: general-homo (default) or
	// general-het.
	Model string `json:"model,omitempty"`

	Machine MachineSpec `json:"machine,omitempty"`
}

// Normalized returns the request with defaults filled in.
func (r AppendRequest) Normalized() AppendRequest {
	if r.Model == "" {
		r.Model = "general-homo"
	}
	r.Machine = r.Machine.Normalized()
	return r
}

// Scenario validates the request and builds the Scenario an appending
// Session uses (the feature-model choice).
func (r AppendRequest) Scenario() (*Scenario, error) {
	r = r.Normalized()
	model, err := ParseModel(r.Model)
	if err != nil {
		return nil, err
	}
	return NewScenario(WithModel(model))
}

// Fresh produces the request's fresh measurements: parsing Dataset text
// or adopting Observations. Requests with zero or both sources return
// ErrCalibration.
func (r AppendRequest) Fresh() (*Dataset, error) {
	switch {
	case r.Dataset != "" && len(r.Observations) == 0:
		return ParseDataset([]byte(r.Dataset))
	case r.Dataset == "" && len(r.Observations) > 0:
		return &Dataset{Name: "wire", Observations: r.Observations}, nil
	}
	return nil, fmt.Errorf("%w: exactly one of dataset or observations must be given", ErrCalibration)
}

// RegisterMachineRequest is the body of POST /v1/machines/{fingerprint}:
// a calibration result to record as the fingerprint's next version,
// together with the dataset text it was fitted on (kept so appends can
// refit). The result's fitted fingerprint must match the path.
type RegisterMachineRequest struct {
	Result  *CalibrationResult `json:"result"`
	Dataset string             `json:"dataset,omitempty"`
}

// MachineHistorySchema stamps machine-registry history payloads.
const MachineHistorySchema = "krak.machines/v1"

// MachineVersion is one registered calibration of a machine: a version
// number counting up from 1, the dataset it was fitted on, and the full
// calibration result.
type MachineVersion struct {
	Version int                `json:"version"`
	Dataset string             `json:"dataset,omitempty"`
	Result  *CalibrationResult `json:"result"`
}

// MachineHistory is the body of GET /v1/machines/{fingerprint}: the
// registered calibration versions of one machine, oldest first.
type MachineHistory struct {
	Fingerprint string           `json:"fingerprint"`
	Versions    []MachineVersion `json:"versions"`
}

// MarshalJSON renders the history for machine consumption, stamping the
// schema identifier.
func (mh *MachineHistory) MarshalJSON() ([]byte, error) {
	type alias MachineHistory
	b, err := json.Marshal(struct {
		Schema string `json:"schema"`
		*alias
	}{Schema: MachineHistorySchema, alias: (*alias)(mh)})
	if err != nil {
		return nil, fmt.Errorf("%w: encoding machine history: %w", ErrSchema, err)
	}
	return b, nil
}

// UnmarshalJSON decodes a MachineHistory produced by MarshalJSON,
// rejecting payloads whose schema stamp is not MachineHistorySchema
// with ErrSchema.
func (mh *MachineHistory) UnmarshalJSON(data []byte) error {
	type alias MachineHistory
	aux := struct {
		Schema string `json:"schema"`
		*alias
	}{alias: (*alias)(mh)}
	if err := json.Unmarshal(data, &aux); err != nil {
		return fmt.Errorf("%w: decoding machine history: %w", ErrSchema, err)
	}
	if aux.Schema != MachineHistorySchema {
		return fmt.Errorf("%w: got %q, want %q", ErrSchema, aux.Schema, MachineHistorySchema)
	}
	return nil
}

// MachineInfo is one entry of GET /v1/machines: an interconnect preset
// the server can serve predictions for.
type MachineInfo struct {
	Interconnect string `json:"interconnect"`
	Network      string `json:"network"`
}

// ListMachines returns the interconnect presets in stable order.
func ListMachines() []MachineInfo {
	var out []MachineInfo
	for _, name := range []string{"qsnet", "gige", "infiniband"} {
		net, err := interconnectByName(name)
		if err != nil {
			panic(err) // unreachable: the list above is the registry
		}
		out = append(out, MachineInfo{Interconnect: name, Network: net.Name()})
	}
	return out
}

// UnmarshalJSON decodes a Result produced by MarshalJSON (the CLI's
// --json output and every `krak serve` response), rejecting payloads
// whose schema stamp is not ResultSchema with ErrSchema.
func (r *Result) UnmarshalJSON(data []byte) error {
	type alias Result
	aux := struct {
		Schema string `json:"schema"`
		*alias
	}{alias: (*alias)(r)}
	if err := json.Unmarshal(data, &aux); err != nil {
		return fmt.Errorf("%w: decoding result: %w", ErrSchema, err)
	}
	if aux.Schema != ResultSchema {
		return fmt.Errorf("%w: got %q, want %q", ErrSchema, aux.Schema, ResultSchema)
	}
	return nil
}

// UnmarshalJSON decodes a SweepResult produced by its MarshalJSON,
// rejecting payloads whose schema stamp is not SweepSchema with
// ErrSchema.
func (sr *SweepResult) UnmarshalJSON(data []byte) error {
	type alias SweepResult
	aux := struct {
		Schema string `json:"schema"`
		*alias
	}{alias: (*alias)(sr)}
	if err := json.Unmarshal(data, &aux); err != nil {
		return fmt.Errorf("%w: decoding sweep: %w", ErrSchema, err)
	}
	if aux.Schema != SweepSchema {
		return fmt.Errorf("%w: got %q, want %q", ErrSchema, aux.Schema, SweepSchema)
	}
	return nil
}

// JobSchema stamps job-status payloads.
const JobSchema = "krak.job/v1"

// Job states, as reported in JobStatus.Status.
const (
	JobPending = "pending" // accepted, waiting for a worker slot
	JobRunning = "running" // sweep in progress
	JobDone    = "done"    // result available at /v1/jobs/{id}/result
	JobFailed  = "failed"  // Error says why
)

// JobStatus is the body POST /v1/jobs returns on submission and GET
// /v1/jobs/{id} returns on every poll: the job's id and lifecycle state.
// When the state is JobDone, GET /v1/jobs/{id}/result serves the stored
// SweepResult — byte-identical to what POST /v1/sweep would have returned
// for the same request at completion time.
type JobStatus struct {
	Schema string `json:"schema"`
	ID     string `json:"id"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}
