package krak

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"krak/internal/calib"
	"krak/internal/core"
	"krak/internal/netmodel"
	"krak/internal/stats"
	"krak/internal/textplot"
)

// This file is the calibration entry point of the façade: it turns a
// timing dataset (measured on a real or simulated cluster) into fitted
// machine parameters — a compute-rate multiplier relative to the ES45
// baseline, effective network latency and bandwidth, and a fixed
// per-iteration overhead — by reducing each observation to baseline-model
// features and least-squares fitting them in internal/calib. The fitted
// machine comes back both as reportable parameters (with standard errors,
// R², and optional k-fold cross-validation) and as a ready-to-use
// MachineSpec/machine file, closing the loop: measure, calibrate, then
// predict on the machine the fit described.

// Observation is one measured run of a standard deck: the wire and
// dataset-file form of a timing measurement.
type Observation struct {
	Deck    string  `json:"deck"`
	PEs     int     `json:"pes"`
	Seconds float64 `json:"seconds"`
}

// Dataset is a named measurement campaign: what Session.Calibrate fits.
type Dataset struct {
	Name         string        `json:"name,omitempty"`
	Observations []Observation `json:"observations"`
}

// ParseDataset parses the textual measurement format (see internal/calib:
// "dataset NAME" and "obs DECK PES SECONDS" lines, '#' comments) into a
// Dataset. Malformed input returns ErrCalibration.
func ParseDataset(src []byte) (*Dataset, error) {
	ds, err := calib.ParseDataset(src)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCalibration, err)
	}
	out := &Dataset{Name: ds.Name}
	for _, o := range ds.Obs {
		//krakcheck:ignore boundedparse calib.ParseDataset above already enforces MaxDatasetBytes and MaxObservations on ds.Obs
		out.Observations = append(out.Observations, Observation(o))
	}
	return out, nil
}

// Format renders the dataset back into the textual measurement format
// ParseDataset reads.
func (d *Dataset) Format() []byte {
	cd := calib.Dataset{Name: d.Name}
	for _, o := range d.Observations {
		cd.Obs = append(cd.Obs, calib.Observation(o))
	}
	return cd.Format()
}

// CalibrateOptions tunes Session.Calibrate.
type CalibrateOptions struct {
	// Folds enables k-fold cross-validation of the fit when >= 2; 0
	// disables it. Values outside [2, len(observations)] are rejected.
	Folds int
}

// FitParams are fitted machine parameters (or their standard errors) in
// model units: seconds, and a unitless compute multiplier.
type FitParams struct {
	// ComputeScale multiplies the baseline ES45 computation rates.
	ComputeScale float64 `json:"compute_scale"`

	// LatencySeconds is the effective per-message latency.
	LatencySeconds float64 `json:"latency_s"`

	// SecondsPerByte is the effective per-byte wire cost (1/bandwidth).
	SecondsPerByte float64 `json:"s_per_byte"`

	// FixedSeconds is the fixed per-iteration overhead.
	FixedSeconds float64 `json:"fixed_s"`
}

// CVReport is the k-fold cross-validation block of a CalibrationResult.
type CVReport struct {
	Folds       int     `json:"folds"`
	RMSESeconds float64 `json:"rmse_s"`
	MAPE        float64 `json:"mape"`
	MaxAPE      float64 `json:"max_ape"`
}

// CalibrationPoint is one observation's share of the fit: observed vs
// fitted seconds, with the paper's (measured-predicted)/measured error
// convention.
type CalibrationPoint struct {
	Deck            string  `json:"deck"`
	PEs             int     `json:"pes"`
	ObservedSeconds float64 `json:"observed_s"`
	FittedSeconds   float64 `json:"fitted_s"`
	RelErr          float64 `json:"rel_err"`
}

// CalibrationResult reports a Session.Calibrate run: the fitted machine
// parameters with per-parameter standard errors, the fit quality,
// optional cross-validation, every observation's residual, and the
// fitted machine as a MachineSpec ready for LoadMachine / -machine-file
// / wire requests.
type CalibrationResult struct {
	Dataset      string   `json:"dataset,omitempty"`
	Observations int      `json:"observations"`
	Model        string   `json:"model"`
	Terms        []string `json:"terms"`

	Params FitParams `json:"params"`
	StdErr FitParams `json:"stderr"`

	R2          float64 `json:"r2"`
	RMSESeconds float64 `json:"rmse_s"`

	CV *CVReport `json:"cv,omitempty"`

	Points []CalibrationPoint `json:"points"`

	// Fitted is the calibrated machine: a single-segment network at the
	// fitted latency/bandwidth plus the fitted compute scale, carrying
	// the calibrating machine's seed and quick mode. Parameters are
	// clamped into the machine-file ranges (non-negative latency,
	// positive scale).
	Fitted MachineSpec `json:"fitted_machine"`
}

// CalibrationSchema identifies the JSON layout CalibrationResult
// marshals to.
const CalibrationSchema = "krak.calibration/v1"

// MarshalJSON renders the calibration for machine consumption (the CLI's
// --json flag and /v1/calibrate), stamping the schema identifier.
func (cr *CalibrationResult) MarshalJSON() ([]byte, error) {
	type alias CalibrationResult
	b, err := json.Marshal(struct {
		Schema string `json:"schema"`
		*alias
	}{Schema: CalibrationSchema, alias: (*alias)(cr)})
	if err != nil {
		return nil, fmt.Errorf("%w: encoding calibration: %w", ErrSchema, err)
	}
	return b, nil
}

// UnmarshalJSON decodes a CalibrationResult produced by MarshalJSON,
// rejecting payloads whose schema stamp is not CalibrationSchema with
// ErrSchema.
func (cr *CalibrationResult) UnmarshalJSON(data []byte) error {
	type alias CalibrationResult
	aux := struct {
		Schema string `json:"schema"`
		*alias
	}{alias: (*alias)(cr)}
	if err := json.Unmarshal(data, &aux); err != nil {
		return fmt.Errorf("%w: decoding calibration: %w", ErrSchema, err)
	}
	if aux.Schema != CalibrationSchema {
		return fmt.Errorf("%w: got %q, want %q", ErrSchema, aux.Schema, CalibrationSchema)
	}
	return nil
}

// Render formats the calibration for a terminal, mirroring the JSON
// content and appending the fitted machine file.
func (cr *CalibrationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Calibration of %d observations", cr.Observations)
	if cr.Dataset != "" {
		fmt.Fprintf(&b, " (dataset %s)", cr.Dataset)
	}
	fmt.Fprintf(&b, " under the %s model\n\n", cr.Model)

	bw := "inf"
	if cr.Params.SecondsPerByte > 0 {
		bw = fmt.Sprintf("%.1f MB/s", 1/(cr.Params.SecondsPerByte*1e6))
	}
	rows := [][]string{
		{"compute scale", fmt.Sprintf("%.4f", cr.Params.ComputeScale),
			fmt.Sprintf("%.2g", cr.StdErr.ComputeScale), "x ES45 baseline"},
		{"latency", fmt.Sprintf("%.3f us", cr.Params.LatencySeconds*1e6),
			fmt.Sprintf("%.2g us", cr.StdErr.LatencySeconds*1e6), "per message"},
		{"bandwidth", bw,
			fmt.Sprintf("%.2g s/B", cr.StdErr.SecondsPerByte),
			fmt.Sprintf("%.3g s/B", cr.Params.SecondsPerByte)},
		{"fixed overhead", fmt.Sprintf("%.4f ms", cr.Params.FixedSeconds*1e3),
			fmt.Sprintf("%.2g ms", cr.StdErr.FixedSeconds*1e3), "per iteration"},
	}
	b.WriteString(textplot.Table([]string{"Parameter", "Fitted", "Std err", "Note"}, rows))
	fmt.Fprintf(&b, "\nFit (terms: %s): R^2 %.6f, RMSE %.4f ms\n",
		strings.Join(cr.Terms, "+"), cr.R2, cr.RMSESeconds*1e3)
	if cr.CV != nil {
		fmt.Fprintf(&b, "Cross-validation (k=%d): RMSE %.4f ms, MAPE %s (max %s)\n",
			cr.CV.Folds, cr.CV.RMSESeconds*1e3, stats.FormatPct(cr.CV.MAPE), stats.FormatPct(cr.CV.MaxAPE))
	}

	b.WriteByte('\n')
	var prow [][]string
	for _, pt := range cr.Points {
		prow = append(prow, []string{
			pt.Deck,
			fmt.Sprintf("%d", pt.PEs),
			fmt.Sprintf("%.3f", pt.ObservedSeconds*1e3),
			fmt.Sprintf("%.3f", pt.FittedSeconds*1e3),
			stats.FormatPct(pt.RelErr),
		})
	}
	b.WriteString(textplot.Table([]string{"Deck", "PEs", "Observed (ms)", "Fitted (ms)", "Err"}, prow))

	fmt.Fprintf(&b, "\nFitted machine file:\n")
	for _, line := range strings.Split(strings.TrimSuffix(string(FormatMachineFile(cr.Fitted)), "\n"), "\n") {
		fmt.Fprintf(&b, "  %s\n", line)
	}
	return b.String()
}

// The unit probe networks feature extraction evaluates the model at: one
// second per message isolates the message count, one second per byte
// isolates the byte volume.
var (
	probeLatencyNet = netmodel.MustNew("probe-latency", []netmodel.Segment{{MinBytes: 0, Latency: 1}})
	probeByteNet    = netmodel.MustNew("probe-bytes", []netmodel.Segment{{MinBytes: 0, PerByte: 1}})
)

// featureMode maps the session's model choice onto the general model's
// material mode; calibration features come from the general model, so
// mesh-specific sessions are rejected.
func featureMode(m Model) (core.MaterialMode, error) {
	switch m {
	case GeneralHomogeneous:
		return core.Homogeneous, nil
	case GeneralHeterogeneous:
		return core.Heterogeneous, nil
	}
	return 0, fmt.Errorf("%w: calibration features need a general model (general-homo or general-het), not %v",
		ErrCalibration, m)
}

// features reduces each observation to its baseline-model features:
// baseline-predicted compute seconds, modeled message count, and modeled
// wire bytes, computed against the reference ES45 rates in the machine's
// feature environment (see Machine.featureEnv) so a custom or scaled
// machine is fitted relative to the common baseline.
func (s *Session) features(ctx context.Context, obs []Observation) ([]calib.Features, error) {
	mode, err := featureMode(s.sc.model)
	if err != nil {
		return nil, err
	}
	fenv := s.m.featureEnv()
	cal, cerr := fenv.ContrivedCalibration()
	if cerr != nil {
		return nil, fmt.Errorf("%w: baseline calibration: %w", ErrCalibration, cerr)
	}
	cache := map[string]calib.Features{}
	out := make([]calib.Features, len(obs))
	for i, o := range obs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		key := fmt.Sprintf("%s/%d", o.Deck, o.PEs)
		if f, ok := cache[key]; ok {
			out[i] = f
			continue
		}
		size, err := deckSizeByName(o.Deck)
		if err != nil {
			return nil, fmt.Errorf("%w: observation %d: %v", ErrCalibration, i, err)
		}
		d, err := fenv.Deck(size)
		if err != nil {
			return nil, fmt.Errorf("%w: feature deck %s: %w", ErrCalibration, o.Deck, err)
		}
		cells := d.Mesh.NumCells()
		pL, err := core.NewGeneral(cal, probeLatencyNet, mode).Predict(cells, o.PEs)
		if err != nil {
			return nil, fmt.Errorf("%w: feature model at %s/%d: %w", ErrCalibration, o.Deck, o.PEs, err)
		}
		pB, err := core.NewGeneral(cal, probeByteNet, mode).Predict(cells, o.PEs)
		if err != nil {
			return nil, fmt.Errorf("%w: feature model at %s/%d: %w", ErrCalibration, o.Deck, o.PEs, err)
		}
		f := calib.Features{
			Compute:  pL.Compute(),
			Messages: pL.Communication(),
			Bytes:    pB.Communication(),
		}
		cache[key] = f
		out[i] = f
	}
	return out, nil
}

// Calibrate fits machine parameters to the dataset's observations (see
// the package-level calibration overview on CalibrationResult): each
// observation is reduced to baseline features of the session's general
// model variant and the linear timing model is least-squares fitted in
// internal/calib. Fitting is deterministic for a fixed machine and
// dataset, so the rendered and JSON outputs are byte-stable. Invalid
// datasets, unknown decks, mesh-specific sessions, bad fold counts, and
// degenerate fits return ErrCalibration.
func (s *Session) Calibrate(ctx context.Context, ds *Dataset, opt CalibrateOptions) (*CalibrationResult, error) {
	if ds == nil || len(ds.Observations) == 0 {
		return nil, fmt.Errorf("%w: empty dataset", ErrCalibration)
	}
	if len(ds.Observations) > calib.MaxObservations {
		return nil, fmt.Errorf("%w: %d observations, max %d",
			ErrCalibration, len(ds.Observations), calib.MaxObservations)
	}
	times := make([]float64, len(ds.Observations))
	for i, o := range ds.Observations {
		if o.PEs <= 0 {
			return nil, fmt.Errorf("%w: observation %d: processor count %d", ErrCalibration, i, o.PEs)
		}
		if math.IsNaN(o.Seconds) || math.IsInf(o.Seconds, 0) || o.Seconds <= 0 {
			return nil, fmt.Errorf("%w: observation %d: seconds %g", ErrCalibration, i, o.Seconds)
		}
		times[i] = o.Seconds
	}
	if opt.Folds != 0 && (opt.Folds < 2 || opt.Folds > len(ds.Observations)) {
		return nil, fmt.Errorf("%w: %d folds for %d observations", ErrCalibration, opt.Folds, len(ds.Observations))
	}

	feats, err := s.features(ctx, ds.Observations)
	if err != nil {
		return nil, err
	}
	fr, ferr := calib.Fit(times, feats)
	if ferr != nil {
		return nil, fmt.Errorf("%w: %v", ErrCalibration, ferr)
	}

	cr := &CalibrationResult{
		Dataset:      ds.Name,
		Observations: len(ds.Observations),
		Model:        s.sc.model.String(),
		Terms:        fr.Terms,
		Params:       fitParams(fr.Params),
		StdErr:       fitParams(fr.StdErr),
		R2:           fr.R2,
		RMSESeconds:  fr.RMSE,
		Fitted:       s.fittedSpec(fr.Params),
	}
	for i, o := range ds.Observations {
		fitted := fr.Params.Predict(feats[i])
		cr.Points = append(cr.Points, CalibrationPoint{
			Deck:            o.Deck,
			PEs:             o.PEs,
			ObservedSeconds: o.Seconds,
			FittedSeconds:   fitted,
			RelErr:          stats.RelErr(o.Seconds, fitted),
		})
	}
	if opt.Folds >= 2 {
		cv, err := calib.CrossValidate(times, feats, opt.Folds, s.m.Seed())
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCalibration, err)
		}
		cr.CV = &CVReport{Folds: cv.Folds, RMSESeconds: cv.RMSE, MAPE: cv.MAPE, MaxAPE: cv.MaxAPE}
	}
	return cr, nil
}

func fitParams(p calib.Params) FitParams {
	return FitParams{
		ComputeScale:   p.ComputeScale,
		LatencySeconds: p.LatencySec,
		SecondsPerByte: p.ByteSec,
		FixedSeconds:   p.FixedSec,
	}
}

// fittedSpec converts fitted parameters into a usable machine: a
// single-segment network at the fitted latency/bandwidth plus the fitted
// compute scale, clamped into the machine-file ranges.
func (s *Session) fittedSpec(p calib.Params) MachineSpec {
	latUS := p.LatencySec * 1e6
	if !(latUS > 0) {
		latUS = 0
	} else if latUS > 1e9 {
		latUS = 1e9
	}
	bwMBs := 0.0
	if p.ByteSec > 0 {
		bwMBs = 1 / (p.ByteSec * 1e6)
		if bwMBs > 1e9 {
			bwMBs = 1e9
		}
	}
	scale := p.ComputeScale
	if !(scale > 0) {
		scale = 1
	} else if scale > 1e6 {
		scale = 1e6
	}
	spec := MachineSpec{
		Name:           "calibrated",
		Network:        &NetworkSpec{Name: "calibrated", Segments: []SegmentSpec{{MinBytes: 0, LatencyUS: latUS, BandwidthMBs: bwMBs}}},
		ComputeScale:   scale,
		Seed:           s.m.Seed(),
		Quick:          s.m.Quick(),
		SerializeSends: s.m.serialize,
	}
	if s.m.repeatsSet {
		spec.Repeats = s.m.env.Repeats
	}
	return spec.Normalized()
}

// SynthesizeDataset measures the session's machine over the (deck × PE)
// grid — SweepSimulate runs the discrete-event cluster simulator at every
// point ("measured" times with noise and real partitions), SweepPredict
// evaluates the analytic model (noiseless, exactly linear in the machine
// parameters) — and returns the observations as a Dataset ready for
// Calibrate or Format. Empty decks/pes default to the sweep defaults.
// The grid runs concurrently on the machine's worker pool and is bounded
// by MaxSweepPoints.
func (s *Session) SynthesizeDataset(ctx context.Context, op SweepOp, decks []string, pes []int) (*Dataset, error) {
	req := SweepRequest{
		Op:          string(op),
		Decks:       decks,
		PEs:         pes,
		Model:       s.sc.model.String(),
		Partitioner: s.sc.partitioner,
	}
	if s.sc.iterations > 0 {
		req.Iterations = s.sc.iterations
	}
	sweepOp, grid, err := req.Grid()
	if err != nil {
		return nil, err
	}
	sr, err := s.Sweep(ctx, sweepOp, grid)
	if err != nil {
		return nil, err
	}
	ds := &Dataset{Name: "synth-" + string(sweepOp)}
	for _, pt := range sr.Points {
		ds.Observations = append(ds.Observations, Observation{
			Deck:    pt.Deck,
			PEs:     pt.PEs,
			Seconds: pt.Result.TotalSeconds,
		})
	}
	return ds, nil
}
