package krak

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"krak/internal/calib"
	"krak/internal/core"
	"krak/internal/netmodel"
	"krak/internal/stats"
	"krak/internal/textplot"
)

// This file is the calibration entry point of the façade: it turns a
// timing dataset (measured on a real or simulated cluster) into fitted
// machine parameters — a compute-rate multiplier relative to the ES45
// baseline, effective network latency and bandwidth, and a fixed
// per-iteration overhead — by reducing each observation to baseline-model
// features and least-squares fitting them in internal/calib. The fitted
// machine comes back both as reportable parameters (with standard errors,
// R², and optional k-fold cross-validation) and as a ready-to-use
// MachineSpec/machine file, closing the loop: measure, calibrate, then
// predict on the machine the fit described.

// Observation is one measured run of a standard deck: the wire and
// dataset-file form of a timing measurement.
type Observation struct {
	Deck    string  `json:"deck"`
	PEs     int     `json:"pes"`
	Seconds float64 `json:"seconds"`
}

// Dataset is a named measurement campaign: what Session.Calibrate fits.
type Dataset struct {
	Name         string        `json:"name,omitempty"`
	Observations []Observation `json:"observations"`
}

// ParseDataset parses the textual measurement format (see internal/calib:
// "dataset NAME" and "obs DECK PES SECONDS" lines, '#' comments) into a
// Dataset. Malformed input returns ErrCalibration.
func ParseDataset(src []byte) (*Dataset, error) {
	ds, err := calib.ParseDataset(src)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCalibration, err)
	}
	out := &Dataset{Name: ds.Name}
	for _, o := range ds.Obs {
		//krakcheck:ignore boundedparse calib.ParseDataset above already enforces MaxDatasetBytes and MaxObservations on ds.Obs
		out.Observations = append(out.Observations, Observation(o))
	}
	return out, nil
}

// Format renders the dataset back into the textual measurement format
// ParseDataset reads.
func (d *Dataset) Format() []byte {
	cd := calib.Dataset{Name: d.Name}
	for _, o := range d.Observations {
		cd.Obs = append(cd.Obs, calib.Observation(o))
	}
	return cd.Format()
}

// CalibrateOptions tunes Session.Calibrate.
type CalibrateOptions struct {
	// Folds enables the k-fold cross-validation report when >= 2; 0
	// disables it. Values outside [2, len(observations)] are rejected.
	// Automatic form selection always cross-validates internally, using
	// Folds when set and min(5, observations) otherwise.
	Folds int

	// Form selects the timing-model form: a ModelForms name ("linear",
	// "loglog", "interact", "piecewise"), or FormAuto — the default,
	// also spelled "" — to fit every candidate and pick the
	// cross-validation winner with a parsimony tie-break.
	Form string
}

// FormAuto is the CalibrateOptions.Form (and wire "form") value
// requesting automatic model selection over the whole form zoo.
const FormAuto = "auto"

// FormInfo describes one candidate model form of the calibration zoo.
type FormInfo struct {
	Name        string `json:"name"`
	Coeffs      int    `json:"coeffs"`
	Description string `json:"description"`
}

// ModelForms lists the candidate model forms in registry (ascending
// parsimony) order — the valid explicit CalibrateOptions.Form values.
func ModelForms() []FormInfo {
	var out []FormInfo
	for _, f := range calib.Forms() {
		out = append(out, FormInfo{Name: f.Name(), Coeffs: f.Coeffs(), Description: f.Describe()})
	}
	return out
}

// FormScore is one scoreboard row of an automatic model selection: how a
// candidate form fitted and cross-validated on the dataset.
type FormScore struct {
	Form          string  `json:"form"`
	Coeffs        int     `json:"coeffs"`
	R2            float64 `json:"r2"`
	RMSESeconds   float64 `json:"rmse_s"`
	CVRMSESeconds float64 `json:"cv_rmse_s"`
	CVMAPE        float64 `json:"cv_mape"`
	Selected      bool    `json:"selected,omitempty"`
	Error         string  `json:"error,omitempty"`
}

// DriftReport scores fresh measurements against the model fitted on the
// stored observations alone (see Session.CalibrateAppend). The flag
// statistic is relative — observation times span orders of magnitude,
// so an absolute band would be set entirely by the slowest points.
type DriftReport struct {
	// Flagged is true when the fresh residuals left the band: the
	// machine the fresh data came from no longer looks like the one the
	// stored fit described.
	Flagged bool `json:"flagged"`

	// FreshObservations counts the appended measurements checked.
	FreshObservations int `json:"fresh_observations"`

	// FreshRMSESeconds is the fresh data's RMS absolute residual under
	// the stored fit, for context; the flag statistic is FreshRelRMS.
	FreshRMSESeconds float64 `json:"fresh_rmse_s"`

	// FreshRelRMS is the fresh data's RMS relative residual — the
	// statistic compared against Band.
	FreshRelRMS float64 `json:"fresh_rel_rms"`

	// Band is the acceptance threshold on FreshRelRMS: three relative
	// residual standard errors of the stored fit (floored so noiseless
	// fits do not flag on rounding noise).
	Band float64 `json:"band_rel"`

	// SigmaRel is the stored fit's relative residual stderr the band is
	// built from.
	SigmaRel float64 `json:"sigma_rel"`
}

// FitParams are fitted machine parameters (or their standard errors) in
// model units: seconds, and a unitless compute multiplier.
type FitParams struct {
	// ComputeScale multiplies the baseline ES45 computation rates.
	ComputeScale float64 `json:"compute_scale"`

	// LatencySeconds is the effective per-message latency.
	LatencySeconds float64 `json:"latency_s"`

	// SecondsPerByte is the effective per-byte wire cost (1/bandwidth).
	SecondsPerByte float64 `json:"s_per_byte"`

	// FixedSeconds is the fixed per-iteration overhead.
	FixedSeconds float64 `json:"fixed_s"`
}

// CVReport is the k-fold cross-validation block of a CalibrationResult.
type CVReport struct {
	Folds       int     `json:"folds"`
	RMSESeconds float64 `json:"rmse_s"`
	MAPE        float64 `json:"mape"`
	MaxAPE      float64 `json:"max_ape"`
}

// CalibrationPoint is one observation's share of the fit: observed vs
// fitted seconds, with the paper's (measured-predicted)/measured error
// convention.
type CalibrationPoint struct {
	Deck            string  `json:"deck"`
	PEs             int     `json:"pes"`
	ObservedSeconds float64 `json:"observed_s"`
	FittedSeconds   float64 `json:"fitted_s"`
	RelErr          float64 `json:"rel_err"`
}

// CalibrationResult reports a Session.Calibrate run: the fitted machine
// parameters with per-parameter standard errors, the fit quality,
// optional cross-validation, every observation's residual, and the
// fitted machine as a MachineSpec ready for LoadMachine / -machine-file
// / wire requests.
type CalibrationResult struct {
	Dataset      string `json:"dataset,omitempty"`
	Observations int    `json:"observations"`
	Model        string `json:"model"`

	// Form is the fitted model form (a ModelForms name), Terms and
	// Coeffs its aligned term names and fitted coefficients, and
	// Breakpoint the piecewise form's bytes-per-message split (0 for
	// every other form).
	Form       string    `json:"form"`
	Terms      []string  `json:"terms"`
	Coeffs     []float64 `json:"coeffs"`
	Breakpoint float64   `json:"breakpoint_bytes,omitempty"`

	// Params and StdErr are the linear-equivalent machine parameters:
	// for the linear form they are the fit itself; for richer forms they
	// come from a side linear fit of the same data, keeping a
	// machine-file interpretation available.
	Params FitParams `json:"params"`
	StdErr FitParams `json:"stderr"`

	R2          float64 `json:"r2"`
	RMSESeconds float64 `json:"rmse_s"`

	// SigmaRel is the fit's degrees-of-freedom-corrected RMS relative
	// residual — the stderr band drift detection checks appended
	// measurements against.
	SigmaRel float64 `json:"sigma_rel"`

	// Scoreboard reports every candidate form's fit and CV scores when
	// the form was selected automatically; nil for an explicit Form.
	Scoreboard []FormScore `json:"scoreboard,omitempty"`

	// Drift is set by Session.CalibrateAppend: how the appended
	// measurements scored against the stored fit before the refit.
	Drift *DriftReport `json:"drift,omitempty"`

	CV *CVReport `json:"cv,omitempty"`

	Points []CalibrationPoint `json:"points"`

	// Fitted is the calibrated machine: a network at the fitted
	// latency/bandwidth (two segments split at the breakpoint for the
	// piecewise form, one segment otherwise) plus the fitted compute
	// scale, carrying the calibrating machine's seed and quick mode.
	// Parameters are clamped into the machine-file ranges (non-negative
	// latency, positive scale).
	Fitted MachineSpec `json:"fitted_machine"`

	// FittedFingerprint is Fitted.Fingerprint(): the identity the
	// machine registry stores calibration history under.
	FittedFingerprint string `json:"fitted_fingerprint"`
}

// CalibrationSchema identifies the JSON layout CalibrationResult
// marshals to.
const CalibrationSchema = "krak.calibration/v1"

// MarshalJSON renders the calibration for machine consumption (the CLI's
// --json flag and /v1/calibrate), stamping the schema identifier.
func (cr *CalibrationResult) MarshalJSON() ([]byte, error) {
	type alias CalibrationResult
	b, err := json.Marshal(struct {
		Schema string `json:"schema"`
		*alias
	}{Schema: CalibrationSchema, alias: (*alias)(cr)})
	if err != nil {
		return nil, fmt.Errorf("%w: encoding calibration: %w", ErrSchema, err)
	}
	return b, nil
}

// UnmarshalJSON decodes a CalibrationResult produced by MarshalJSON,
// rejecting payloads whose schema stamp is not CalibrationSchema with
// ErrSchema.
func (cr *CalibrationResult) UnmarshalJSON(data []byte) error {
	type alias CalibrationResult
	aux := struct {
		Schema string `json:"schema"`
		*alias
	}{alias: (*alias)(cr)}
	if err := json.Unmarshal(data, &aux); err != nil {
		return fmt.Errorf("%w: decoding calibration: %w", ErrSchema, err)
	}
	if aux.Schema != CalibrationSchema {
		return fmt.Errorf("%w: got %q, want %q", ErrSchema, aux.Schema, CalibrationSchema)
	}
	return nil
}

// Render formats the calibration for a terminal, mirroring the JSON
// content and appending the fitted machine file.
func (cr *CalibrationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Calibration of %d observations", cr.Observations)
	if cr.Dataset != "" {
		fmt.Fprintf(&b, " (dataset %s)", cr.Dataset)
	}
	fmt.Fprintf(&b, " under the %s model", cr.Model)
	if cr.Form != "" {
		fmt.Fprintf(&b, " (form %s)", cr.Form)
	}
	b.WriteString("\n\n")

	bw := "inf"
	if cr.Params.SecondsPerByte > 0 {
		bw = fmt.Sprintf("%.1f MB/s", 1/(cr.Params.SecondsPerByte*1e6))
	}
	rows := [][]string{
		{"compute scale", fmt.Sprintf("%.4f", cr.Params.ComputeScale),
			fmt.Sprintf("%.2g", cr.StdErr.ComputeScale), "x ES45 baseline"},
		{"latency", fmt.Sprintf("%.3f us", cr.Params.LatencySeconds*1e6),
			fmt.Sprintf("%.2g us", cr.StdErr.LatencySeconds*1e6), "per message"},
		{"bandwidth", bw,
			fmt.Sprintf("%.2g s/B", cr.StdErr.SecondsPerByte),
			fmt.Sprintf("%.3g s/B", cr.Params.SecondsPerByte)},
		{"fixed overhead", fmt.Sprintf("%.4f ms", cr.Params.FixedSeconds*1e3),
			fmt.Sprintf("%.2g ms", cr.StdErr.FixedSeconds*1e3), "per iteration"},
	}
	b.WriteString(textplot.Table([]string{"Parameter", "Fitted", "Std err", "Note"}, rows))
	fmt.Fprintf(&b, "\nFit (terms: %s): R^2 %.6f, RMSE %.4f ms\n",
		strings.Join(cr.Terms, "+"), cr.R2, cr.RMSESeconds*1e3)
	if cr.Form != "" && cr.Form != calib.FormLinear && len(cr.Coeffs) == len(cr.Terms) {
		parts := make([]string, len(cr.Coeffs))
		for i, c := range cr.Coeffs {
			parts[i] = fmt.Sprintf("%s=%.4g", cr.Terms[i], c)
		}
		fmt.Fprintf(&b, "Form coefficients: %s\n", strings.Join(parts, " "))
		if cr.Breakpoint > 0 {
			fmt.Fprintf(&b, "Breakpoint: %.0f B/msg\n", cr.Breakpoint)
		}
	}
	if cr.CV != nil {
		fmt.Fprintf(&b, "Cross-validation (k=%d): RMSE %.4f ms, MAPE %s (max %s)\n",
			cr.CV.Folds, cr.CV.RMSESeconds*1e3, stats.FormatPct(cr.CV.MAPE), stats.FormatPct(cr.CV.MaxAPE))
	}
	if len(cr.Scoreboard) > 0 {
		b.WriteByte('\n')
		var srows [][]string
		for _, sc := range cr.Scoreboard {
			note := ""
			if sc.Selected {
				note = "selected"
			}
			if sc.Error != "" {
				note = sc.Error
			}
			srows = append(srows, []string{
				sc.Form,
				fmt.Sprintf("%d", sc.Coeffs),
				fmt.Sprintf("%.4f", sc.CVRMSESeconds*1e3),
				stats.FormatPct(sc.CVMAPE),
				fmt.Sprintf("%.6f", sc.R2),
				note,
			})
		}
		b.WriteString(textplot.Table([]string{"Form", "Coeffs", "CV RMSE (ms)", "CV MAPE", "R^2", "Note"}, srows))
	}
	if cr.Drift != nil {
		verdict := "within band"
		if cr.Drift.Flagged {
			verdict = "DRIFT FLAGGED"
		}
		fmt.Fprintf(&b, "\nDrift check: %d fresh observations, rel RMS %.3g vs band %.3g (sigma_rel %.3g): %s\n",
			cr.Drift.FreshObservations, cr.Drift.FreshRelRMS, cr.Drift.Band, cr.Drift.SigmaRel, verdict)
	}

	b.WriteByte('\n')
	var prow [][]string
	for _, pt := range cr.Points {
		prow = append(prow, []string{
			pt.Deck,
			fmt.Sprintf("%d", pt.PEs),
			fmt.Sprintf("%.3f", pt.ObservedSeconds*1e3),
			fmt.Sprintf("%.3f", pt.FittedSeconds*1e3),
			stats.FormatPct(pt.RelErr),
		})
	}
	b.WriteString(textplot.Table([]string{"Deck", "PEs", "Observed (ms)", "Fitted (ms)", "Err"}, prow))

	fmt.Fprintf(&b, "\nFitted machine file:\n")
	for _, line := range strings.Split(strings.TrimSuffix(string(FormatMachineFile(cr.Fitted)), "\n"), "\n") {
		fmt.Fprintf(&b, "  %s\n", line)
	}
	return b.String()
}

// The unit probe networks feature extraction evaluates the model at: one
// second per message isolates the message count, one second per byte
// isolates the byte volume.
var (
	probeLatencyNet = netmodel.MustNew("probe-latency", []netmodel.Segment{{MinBytes: 0, Latency: 1}})
	probeByteNet    = netmodel.MustNew("probe-bytes", []netmodel.Segment{{MinBytes: 0, PerByte: 1}})
)

// featureMode maps the session's model choice onto the general model's
// material mode; calibration features come from the general model, so
// mesh-specific sessions are rejected.
func featureMode(m Model) (core.MaterialMode, error) {
	switch m {
	case GeneralHomogeneous:
		return core.Homogeneous, nil
	case GeneralHeterogeneous:
		return core.Heterogeneous, nil
	}
	return 0, fmt.Errorf("%w: calibration features need a general model (general-homo or general-het), not %v",
		ErrCalibration, m)
}

// features reduces each observation to its baseline-model features:
// baseline-predicted compute seconds, modeled message count, and modeled
// wire bytes, computed against the reference ES45 rates in the machine's
// feature environment (see Machine.featureEnv) so a custom or scaled
// machine is fitted relative to the common baseline.
func (s *Session) features(ctx context.Context, obs []Observation) ([]calib.Features, error) {
	mode, err := featureMode(s.sc.model)
	if err != nil {
		return nil, err
	}
	fenv := s.m.featureEnv()
	cal, cerr := fenv.ContrivedCalibration()
	if cerr != nil {
		return nil, fmt.Errorf("%w: baseline calibration: %w", ErrCalibration, cerr)
	}
	cache := map[string]calib.Features{}
	out := make([]calib.Features, len(obs))
	for i, o := range obs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		key := fmt.Sprintf("%s/%d", o.Deck, o.PEs)
		if f, ok := cache[key]; ok {
			out[i] = f
			continue
		}
		size, err := deckSizeByName(o.Deck)
		if err != nil {
			return nil, fmt.Errorf("%w: observation %d: %v", ErrCalibration, i, err)
		}
		d, err := fenv.Deck(size)
		if err != nil {
			return nil, fmt.Errorf("%w: feature deck %s: %w", ErrCalibration, o.Deck, err)
		}
		cells := d.Mesh.NumCells()
		pL, err := core.NewGeneral(cal, probeLatencyNet, mode).Predict(cells, o.PEs)
		if err != nil {
			return nil, fmt.Errorf("%w: feature model at %s/%d: %w", ErrCalibration, o.Deck, o.PEs, err)
		}
		pB, err := core.NewGeneral(cal, probeByteNet, mode).Predict(cells, o.PEs)
		if err != nil {
			return nil, fmt.Errorf("%w: feature model at %s/%d: %w", ErrCalibration, o.Deck, o.PEs, err)
		}
		f := calib.Features{
			Compute:  pL.Compute(),
			Messages: pL.Communication(),
			Bytes:    pB.Communication(),
		}
		cache[key] = f
		out[i] = f
	}
	return out, nil
}

// Calibrate fits machine parameters to the dataset's observations (see
// the package-level calibration overview on CalibrationResult): each
// observation is reduced to baseline features of the session's general
// model variant and the linear timing model is least-squares fitted in
// internal/calib. Fitting is deterministic for a fixed machine and
// dataset, so the rendered and JSON outputs are byte-stable. Invalid
// datasets, unknown decks, mesh-specific sessions, bad fold counts, and
// degenerate fits return ErrCalibration.
func (s *Session) Calibrate(ctx context.Context, ds *Dataset, opt CalibrateOptions) (*CalibrationResult, error) {
	cr, _, err := s.calibrate(ctx, ds, opt)
	return cr, err
}

// CalibrateAppend folds fresh measurements into a stored dataset: the
// stored observations are fitted alone, the fresh observations are
// scored against that fit for drift (see DriftReport), and the merged
// dataset is refitted to produce the returned result — which carries the
// drift verdict. The check answers "does the new data still look like
// the machine the old fit described?" before the refit absorbs it.
func (s *Session) CalibrateAppend(ctx context.Context, base, fresh *Dataset, opt CalibrateOptions) (*CalibrationResult, error) {
	freshTimes, err := datasetTimes(fresh)
	if err != nil {
		return nil, err
	}
	// The base fit is internal: folds are left to selection's default so
	// a fold count sized for the merged dataset cannot over-split a
	// small base; only the merged result reports CV.
	baseOpt := opt
	baseOpt.Folds = 0
	_, baseFit, err := s.calibrate(ctx, base, baseOpt)
	if err != nil {
		return nil, err
	}
	freshFeats, err := s.features(ctx, fresh.Observations)
	if err != nil {
		return nil, err
	}
	d := calib.DetectDrift(baseFit, freshTimes, freshFeats)

	merged := &Dataset{Name: base.Name}
	merged.Observations = append(merged.Observations, base.Observations...)
	merged.Observations = append(merged.Observations, fresh.Observations...)
	cr, _, err := s.calibrate(ctx, merged, opt)
	if err != nil {
		return nil, err
	}
	cr.Drift = &DriftReport{
		Flagged:           d.Flagged,
		FreshObservations: d.FreshN,
		FreshRMSESeconds:  d.FreshRMSE,
		FreshRelRMS:       d.FreshRelRMS,
		Band:              d.Band,
		SigmaRel:          d.Sigma,
	}
	return cr, nil
}

// datasetTimes validates the dataset's shape and observation values and
// extracts the observed times.
func datasetTimes(ds *Dataset) ([]float64, error) {
	if ds == nil || len(ds.Observations) == 0 {
		return nil, fmt.Errorf("%w: empty dataset", ErrCalibration)
	}
	if len(ds.Observations) > calib.MaxObservations {
		return nil, fmt.Errorf("%w: %d observations, max %d",
			ErrCalibration, len(ds.Observations), calib.MaxObservations)
	}
	times := make([]float64, len(ds.Observations))
	for i, o := range ds.Observations {
		if o.PEs <= 0 {
			return nil, fmt.Errorf("%w: observation %d: processor count %d", ErrCalibration, i, o.PEs)
		}
		if math.IsNaN(o.Seconds) || math.IsInf(o.Seconds, 0) || o.Seconds <= 0 {
			return nil, fmt.Errorf("%w: observation %d: seconds %g", ErrCalibration, i, o.Seconds)
		}
		times[i] = o.Seconds
	}
	return times, nil
}

// fitForm fits one named form, wrapping calib errors as ErrCalibration.
func fitForm(times []float64, feats []calib.Features, name string) (*calib.FormFit, error) {
	form, err := calib.FormByName(name)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCalibration, err)
	}
	ff, err := form.Fit(times, feats)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCalibration, err)
	}
	return ff, nil
}

// calibrate is Calibrate plus the winning internal fit, for callers that
// keep scoring against it (CalibrateAppend's drift check).
func (s *Session) calibrate(ctx context.Context, ds *Dataset, opt CalibrateOptions) (*CalibrationResult, *calib.FormFit, error) {
	times, err := datasetTimes(ds)
	if err != nil {
		return nil, nil, err
	}
	n := len(times)
	if opt.Folds != 0 && (opt.Folds < 2 || opt.Folds > n) {
		return nil, nil, fmt.Errorf("%w: %d folds for %d observations", ErrCalibration, opt.Folds, n)
	}

	feats, err := s.features(ctx, ds.Observations)
	if err != nil {
		return nil, nil, err
	}

	var best *calib.FormFit
	var scoreboard []FormScore
	switch formName := strings.ToLower(opt.Form); formName {
	case "", FormAuto:
		k := opt.Folds
		if k == 0 && n >= 2 {
			k = 5
			if k > n {
				k = n
			}
		}
		if k < 2 {
			// A single observation cannot cross-validate; fall back to
			// the linear form with no scoreboard.
			best, err = fitForm(times, feats, calib.FormLinear)
			if err != nil {
				return nil, nil, err
			}
			break
		}
		sel, serr := calib.SelectModel(times, feats, k, s.m.Seed())
		if serr != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrCalibration, serr)
		}
		best = sel.Best
		for _, sc := range sel.Scores {
			scoreboard = append(scoreboard, FormScore{
				Form: sc.Form, Coeffs: sc.Coeffs,
				R2: sc.R2, RMSESeconds: sc.RMSE,
				CVRMSESeconds: sc.CVRMSE, CVMAPE: sc.CVMAPE,
				Selected: sc.Selected, Error: sc.Err,
			})
		}
	default:
		best, err = fitForm(times, feats, formName)
		if err != nil {
			return nil, nil, err
		}
	}

	// The side linear fit backs Params/StdErr — the machine-file
	// interpretation — whatever form won. Its fallback ladder makes it
	// nearly always available; when even that degenerates while a richer
	// form fitted, the parameters are simply left zero.
	var linP, linSE FitParams
	if lfr, lerr := calib.Fit(times, feats); lerr == nil {
		linP, linSE = fitParams(lfr.Params), fitParams(lfr.StdErr)
	} else if best.Form == calib.FormLinear {
		return nil, nil, fmt.Errorf("%w: %v", ErrCalibration, lerr)
	}

	cr := &CalibrationResult{
		Dataset:      ds.Name,
		Observations: n,
		Model:        s.sc.model.String(),
		Form:         best.Form,
		Terms:        best.Terms,
		Coeffs:       best.Coeffs,
		Breakpoint:   best.Breakpoint,
		Params:       linP,
		StdErr:       linSE,
		R2:           best.R2,
		RMSESeconds:  best.RMSE,
		SigmaRel:     best.SigmaRel,
		Scoreboard:   scoreboard,
		Fitted:       s.fittedSpec(best, linP),
	}
	cr.FittedFingerprint = cr.Fitted.Fingerprint()
	for i, o := range ds.Observations {
		fitted := best.Predict(feats[i])
		cr.Points = append(cr.Points, CalibrationPoint{
			Deck:            o.Deck,
			PEs:             o.PEs,
			ObservedSeconds: o.Seconds,
			FittedSeconds:   fitted,
			RelErr:          stats.RelErr(o.Seconds, fitted),
		})
	}
	if opt.Folds >= 2 {
		form, ferr := calib.FormByName(best.Form)
		if ferr != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrCalibration, ferr)
		}
		cv, cerr := calib.CrossValidateForm(times, feats, opt.Folds, s.m.Seed(), form)
		if cerr != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrCalibration, cerr)
		}
		cr.CV = &CVReport{Folds: cv.Folds, RMSESeconds: cv.RMSE, MAPE: cv.MAPE, MaxAPE: cv.MaxAPE}
	}
	return cr, best, nil
}

func fitParams(p calib.Params) FitParams {
	return FitParams{
		ComputeScale:   p.ComputeScale,
		LatencySeconds: p.LatencySec,
		SecondsPerByte: p.ByteSec,
		FixedSeconds:   p.FixedSec,
	}
}

// fittedSegment clamps one fitted latency / byte-cost pair into the
// machine-file segment ranges (non-negative latency, bandwidth capped).
func fittedSegment(minBytes int, latSec, byteSec float64) SegmentSpec {
	latUS := latSec * 1e6
	if !(latUS > 0) {
		latUS = 0
	} else if latUS > 1e9 {
		latUS = 1e9
	}
	bwMBs := 0.0
	if byteSec > 0 {
		bwMBs = 1 / (byteSec * 1e6)
		if bwMBs > 1e9 {
			bwMBs = 1e9
		}
	}
	return SegmentSpec{MinBytes: minBytes, LatencyUS: latUS, BandwidthMBs: bwMBs}
}

// fittedSpec converts the winning fit into a usable machine. The linear
// form (and the linear-equivalent parameters standing in for loglog and
// interact winners) maps onto a single-segment network; the piecewise
// form becomes a two-segment network splitting at the fitted
// breakpoint, which is exactly what the machine-file segment syntax
// expresses. Everything is clamped into the machine-file ranges.
func (s *Session) fittedSpec(best *calib.FormFit, lin FitParams) MachineSpec {
	scale := lin.ComputeScale
	segments := []SegmentSpec{fittedSegment(0, lin.LatencySeconds, lin.SecondsPerByte)}
	if lp, ok := best.LinearParams(); ok {
		scale = lp.ComputeScale
		segments = []SegmentSpec{fittedSegment(0, lp.LatencySec, lp.ByteSec)}
	}
	if best.Form == calib.FormPiecewise && len(best.Coeffs) == 6 && int(best.Breakpoint) > 0 {
		scale = best.Coeffs[0]
		segments = []SegmentSpec{
			fittedSegment(0, best.Coeffs[1], best.Coeffs[2]),
			fittedSegment(int(best.Breakpoint), best.Coeffs[3], best.Coeffs[4]),
		}
	}
	if !(scale > 0) {
		scale = 1
	} else if scale > 1e6 {
		scale = 1e6
	}
	spec := MachineSpec{
		Name:           "calibrated",
		Network:        &NetworkSpec{Name: "calibrated", Segments: segments},
		ComputeScale:   scale,
		Seed:           s.m.Seed(),
		Quick:          s.m.Quick(),
		SerializeSends: s.m.serialize,
	}
	if s.m.repeatsSet {
		spec.Repeats = s.m.env.Repeats
	}
	return spec.Normalized()
}

// SynthesizeDataset measures the session's machine over the (deck × PE)
// grid — SweepSimulate runs the discrete-event cluster simulator at every
// point ("measured" times with noise and real partitions), SweepPredict
// evaluates the analytic model (noiseless, exactly linear in the machine
// parameters) — and returns the observations as a Dataset ready for
// Calibrate or Format. Empty decks/pes default to the sweep defaults.
// The grid runs concurrently on the machine's worker pool and is bounded
// by MaxSweepPoints.
func (s *Session) SynthesizeDataset(ctx context.Context, op SweepOp, decks []string, pes []int) (*Dataset, error) {
	req := SweepRequest{
		Op:          string(op),
		Decks:       decks,
		PEs:         pes,
		Model:       s.sc.model.String(),
		Partitioner: s.sc.partitioner,
	}
	if s.sc.iterations > 0 {
		req.Iterations = s.sc.iterations
	}
	sweepOp, grid, err := req.Grid()
	if err != nil {
		return nil, err
	}
	sr, err := s.Sweep(ctx, sweepOp, grid)
	if err != nil {
		return nil, err
	}
	ds := &Dataset{Name: "synth-" + string(sweepOp)}
	for _, pt := range sr.Points {
		ds.Observations = append(ds.Observations, Observation{
			Deck:    pt.Deck,
			PEs:     pt.PEs,
			Seconds: pt.Result.TotalSeconds,
		})
	}
	return ds, nil
}
