package krak

import "fmt"

// Model selects one of the paper's analytic model variants.
type Model int

// The three model variants of §3.
const (
	// GeneralHomogeneous is the general model (§3.2) under the homogeneous
	// material assumption — the paper's headline scalability tool.
	GeneralHomogeneous Model = iota

	// GeneralHeterogeneous is the general model under the heterogeneous
	// (global material ratio) assumption.
	GeneralHeterogeneous

	// MeshSpecific is the mesh-specific ("input-specific") model (§3.1):
	// it consumes the exact partition summary and the full Table 3
	// message-size rules.
	MeshSpecific
)

// String names the variant using the CLI spelling.
func (m Model) String() string {
	switch m {
	case GeneralHomogeneous:
		return "general-homo"
	case GeneralHeterogeneous:
		return "general-het"
	case MeshSpecific:
		return "mesh-specific"
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

func (m Model) valid() bool {
	return m >= GeneralHomogeneous && m <= MeshSpecific
}

// ParseModel maps a CLI spelling back to a Model.
func ParseModel(s string) (Model, error) {
	switch s {
	case "general-homo", "general-homogeneous":
		return GeneralHomogeneous, nil
	case "general-het", "general-heterogeneous":
		return GeneralHeterogeneous, nil
	case "mesh-specific", "input-specific":
		return MeshSpecific, nil
	}
	return 0, fmt.Errorf("%w: %q (general-homo|general-het|mesh-specific)", ErrUnknownModel, s)
}
