package krak

import (
	"strings"
	"testing"
)

// FuzzParseMachineFile asserts the no-panic contract of the machine-file
// parser (mirroring mesh.FuzzParseDeck): any input either parses into a
// spec that builds a Machine, or is rejected with an error — never a
// panic — and every accepted spec survives a FormatMachineFile round
// trip with its content fingerprint intact. Checked-in seeds live in
// testdata/fuzz/FuzzParseMachineFile; run with
//
//	go test -fuzz FuzzParseMachineFile ./pkg/krak
func FuzzParseMachineFile(f *testing.F) {
	seeds := []string{
		"machine lab\ninterconnect gige\nseed 7\nrepeats 3\nquick\n",
		"network myri\nsegment 0 9.5 120\nsegment 4096 15 240\n",
		"compute-scale 1.5\nserialize-sends\n",
		"# comment only\n",
		"interconnect tokenring\n",
		"network x\nsegment 64 1 1\n",
		"segment 0 1 1\n",
		"compute-scale NaN\n",
		"seed 99999999999999999999\n",
		"interconnect infiniband\ntopology fat-tree 0.2 36\n",
		"topology dragonfly 0.3 16\ncompute-scale 0.02\n",
		"network x\nsegment 0 1 1\ntopology torus 0.5 8 8 8\n",
		"topology torus 0.5\n",
		"topology hypercube 1 4\n",
		"topology fat-tree NaN 8\n",
		"topology torus 0.2 4 4\n",
		"machine " + strings.Repeat("m", 100) + "\n",
		"network x\n" + strings.Repeat("segment 0 1 1\n", 70),
		"\x00\xff",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, src []byte) {
		ms, err := ParseMachineFile(src)
		if err != nil {
			return
		}
		// Accepted specs must build: the parser promises a buildable
		// machine, and construction is cheap (no artifact computation).
		if _, err := NewMachine(ms.Options()...); err != nil {
			t.Fatalf("parsed spec does not build: %v\n%+v", err, ms)
		}
		// And round-trip through the formatter with identity preserved.
		text := FormatMachineFile(ms)
		back, err := ParseMachineFile(text)
		if err != nil {
			t.Fatalf("formatted spec does not reparse: %v\n%s", err, text)
		}
		if back.Fingerprint() != ms.Fingerprint() {
			t.Fatalf("fingerprint drifted through format/parse:\n%s", text)
		}
	})
}
