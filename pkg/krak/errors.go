package krak

import (
	"errors"
	"fmt"
)

// Sentinel errors returned (possibly wrapped with detail) by option
// validation and Session methods. Match them with errors.Is.
var (
	// ErrUnknownDeck is returned for a deck name outside
	// small|medium|large|figure2.
	ErrUnknownDeck = errors.New("krak: unknown deck")

	// ErrBadPE is returned when the processor count is not positive.
	ErrBadPE = errors.New("krak: processor count must be positive")

	// ErrUnknownModel is returned for a model outside the three variants
	// (general-homo, general-het, mesh-specific).
	ErrUnknownModel = errors.New("krak: unknown model")

	// ErrUnknownPartitioner is returned for a partitioner name outside
	// multilevel|rcb|sfc|strips|random.
	ErrUnknownPartitioner = errors.New("krak: unknown partitioner")

	// ErrUnknownInterconnect is returned for an interconnect name outside
	// qsnet|gige|infiniband.
	ErrUnknownInterconnect = errors.New("krak: unknown interconnect")

	// ErrUnknownExperiment is returned by Session.Experiment for an id not
	// in the registry.
	ErrUnknownExperiment = errors.New("krak: unknown experiment")

	// ErrBadOption is returned for out-of-range option values (iteration
	// counts, hydro steps/ranks, deck dimensions).
	ErrBadOption = errors.New("krak: invalid option value")

	// ErrBadDeckSpec is returned by WithDeckSpec when the textual deck
	// format does not parse.
	ErrBadDeckSpec = errors.New("krak: invalid deck spec")

	// ErrBadMachineSpec is returned by ParseMachineFile, NetworkSpec
	// validation, and the machine options built on them when a declarative
	// machine description (a -machine-file, a wire MachineSpec's custom
	// network or embedded file) is malformed.
	ErrBadMachineSpec = errors.New("krak: invalid machine spec")

	// ErrCalibration is returned by Session.Calibrate and the dataset
	// plumbing behind it when a calibration cannot run: an empty or
	// malformed dataset, an observation referencing an unknown deck, an
	// unsupported feature model, or a degenerate fit.
	ErrCalibration = errors.New("krak: calibration error")

	// ErrSchema is returned by the MarshalJSON/UnmarshalJSON pairs on
	// Result, SweepResult, and CalibrationResult when a payload cannot be
	// decoded, its schema stamp is not the expected one, or a value
	// cannot be encoded — the guard that keeps clients of `krak serve`
	// from silently exchanging an incompatible layout.
	ErrSchema = errors.New("krak: unexpected result schema")

	// ErrUnavailable is returned (and mapped to 503 on the wire) when the
	// serving tier cannot take or place a request right now: every replica
	// for a key is down or circuit-broken at the gateway and no degraded
	// tier can answer, or a bounded server resource (machine cache, job
	// store) is full. Responses carrying it include a Retry-After header;
	// the condition is transient and the request is safe to retry.
	ErrUnavailable = errors.New("krak: service unavailable")

	// ErrModel wraps failures surfacing from the internal model layers —
	// partitioning, cluster simulation, hydro stepping, analytic
	// prediction, experiment execution — through a public Session method.
	// The cause stays in the chain (a canceled sweep still matches
	// context.Canceled), so ErrModel adds matchability without hiding
	// anything; it exists so every error a Session returns satisfies the
	// package contract that errors.Is finds at least one Err* sentinel.
	ErrModel = errors.New("krak: model evaluation failed")
)

// modelErr wraps an error crossing the internal-model boundary in
// ErrModel; op names the failing operation. Both ErrModel and err remain
// matchable with errors.Is.
func modelErr(op string, err error) error {
	return fmt.Errorf("%w: %s: %w", ErrModel, op, err)
}
