package krak

import (
	"errors"
	"testing"
)

func TestScenarioOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opt  ScenarioOption
		want error
	}{
		{"bad deck name", WithDeck("mega"), ErrUnknownDeck},
		{"zero PE", WithPE(0), ErrBadPE},
		{"negative PE", WithPE(-4), ErrBadPE},
		{"unknown model", WithModel(Model(99)), ErrUnknownModel},
		{"negative model", WithModel(Model(-1)), ErrUnknownModel},
		{"unknown partitioner", WithPartitioner("zoltan"), ErrUnknownPartitioner},
		{"zero iterations", WithIterations(0), ErrBadOption},
		{"zero steps", WithSteps(0), ErrBadOption},
		{"zero ranks", WithRanks(0), ErrBadOption},
		{"bad deck dims", WithDeckDims(0, 10), ErrBadOption},
		{"empty calibration", WithCalibrationPEs(), ErrBadOption},
		{"bad calibration PE", WithCalibrationPEs(4, 0), ErrBadPE},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewScenario(tc.opt)
			if err == nil {
				t.Fatalf("NewScenario(%s): want error, got nil", tc.name)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("NewScenario(%s): got %v, want errors.Is(%v)", tc.name, err, tc.want)
			}
		})
	}
}

func TestScenarioDefaults(t *testing.T) {
	sc, err := NewScenario()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Deck() != "medium" || sc.PE() != 128 || sc.ModelChoice() != GeneralHomogeneous ||
		sc.Partitioner() != "multilevel" || sc.Steps() != 100 || sc.Ranks() != 1 {
		t.Errorf("unexpected defaults: deck=%s pe=%d model=%v partitioner=%s steps=%d ranks=%d",
			sc.Deck(), sc.PE(), sc.ModelChoice(), sc.Partitioner(), sc.Steps(), sc.Ranks())
	}
}

func TestMachineOptionValidation(t *testing.T) {
	if _, err := NewMachine(WithInterconnect("token-ring")); !errors.Is(err, ErrUnknownInterconnect) {
		t.Errorf("unknown interconnect: got %v, want ErrUnknownInterconnect", err)
	}
	if _, err := NewMachine(WithRepeats(0)); !errors.Is(err, ErrBadOption) {
		t.Errorf("zero repeats: got %v, want ErrBadOption", err)
	}
}

func TestMachinePresetRoundTrips(t *testing.T) {
	presets := map[string]*Machine{
		"qsnet":      QsNetCluster(),
		"gige":       GigECluster(),
		"infiniband": InfinibandCluster(),
	}
	for name, m := range presets {
		if m.Interconnect() != name {
			t.Errorf("%s preset: Interconnect() = %q", name, m.Interconnect())
		}
		// Rebuilding from the reported interconnect yields the same network.
		back, err := NewMachine(WithInterconnect(m.Interconnect()))
		if err != nil {
			t.Fatalf("%s round-trip: %v", name, err)
		}
		if back.NetworkName() != m.NetworkName() {
			t.Errorf("%s round-trip: %q != %q", name, back.NetworkName(), m.NetworkName())
		}
	}
	m := QsNetCluster()
	if m.Seed() != 1 || m.Repeats() != 5 || m.Quick() {
		t.Errorf("QsNetCluster defaults: seed=%d repeats=%d quick=%v", m.Seed(), m.Repeats(), m.Quick())
	}
}

func TestQuickRepeatsOrderIndependent(t *testing.T) {
	for _, opts := range [][]MachineOption{
		{WithRepeats(10), WithQuick()},
		{WithQuick(), WithRepeats(10)},
	} {
		m, err := NewMachine(opts...)
		if err != nil {
			t.Fatal(err)
		}
		if m.Repeats() != 10 {
			t.Errorf("explicit repeats overridden: got %d, want 10", m.Repeats())
		}
	}
	m, err := NewMachine(WithQuick())
	if err != nil {
		t.Fatal(err)
	}
	if m.Repeats() != 2 {
		t.Errorf("quick default repeats: got %d, want 2", m.Repeats())
	}
}

func TestRenderNilReportsDoNotPanic(t *testing.T) {
	for _, k := range []Kind{KindHydro, KindPartition, KindExperiment} {
		r := &Result{Kind: k}
		if out := r.Render(); out == "" {
			t.Errorf("kind %s: empty rendering for nil report", k)
		}
	}
}

func TestHydroProgressValidation(t *testing.T) {
	if _, err := NewScenario(WithHydroProgress(0, func(HydroTick) {})); !errors.Is(err, ErrBadOption) {
		t.Errorf("zero interval: got %v, want ErrBadOption", err)
	}
	if _, err := NewScenario(WithHydroProgress(5, nil)); !errors.Is(err, ErrBadOption) {
		t.Errorf("nil callback: got %v, want ErrBadOption", err)
	}
}

func TestModelParseRoundTrip(t *testing.T) {
	for _, m := range []Model{GeneralHomogeneous, GeneralHeterogeneous, MeshSpecific} {
		got, err := ParseModel(m.String())
		if err != nil {
			t.Fatalf("ParseModel(%q): %v", m.String(), err)
		}
		if got != m {
			t.Errorf("ParseModel(%q) = %v, want %v", m.String(), got, m)
		}
	}
	if _, err := ParseModel("spectral"); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("ParseModel(spectral): got %v, want ErrUnknownModel", err)
	}
}

func TestSessionValidation(t *testing.T) {
	sc, err := NewScenario()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSession(nil, sc); !errors.Is(err, ErrBadOption) {
		t.Errorf("nil machine: got %v, want ErrBadOption", err)
	}
	if _, err := NewSession(QsNetCluster(), nil); !errors.Is(err, ErrBadOption) {
		t.Errorf("nil scenario: got %v, want ErrBadOption", err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	sc, err := NewScenario()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(QsNetCluster(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Experiment("table99"); !errors.Is(err, ErrUnknownExperiment) {
		t.Errorf("unknown experiment: got %v, want ErrUnknownExperiment", err)
	}
}

func TestListExperiments(t *testing.T) {
	list := ListExperiments()
	if len(list) == 0 {
		t.Fatal("ListExperiments returned nothing")
	}
	found := false
	for _, e := range list {
		if e.ID == "table5" {
			found = true
			if e.Title == "" {
				t.Error("table5 has an empty title")
			}
		}
	}
	if !found {
		t.Error("registry is missing table5")
	}
}
