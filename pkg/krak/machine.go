package krak

import (
	"fmt"
	"sync"

	"krak/internal/artifacts"
	"krak/internal/compute"
	"krak/internal/engine"
	"krak/internal/experiments"
	"krak/internal/mesh"
	"krak/internal/netmodel"
)

// SharedArtifacts is a cross-machine artifact cache: decks, dual graphs,
// and partitions resolved by any machine holding it are computed once and
// shared by all of them (see internal/artifacts for the keying that makes
// this safe across differing networks, cost scales, quick modes, and
// seeds). The zero value is not usable; create one with NewSharedArtifacts
// and attach it with WithSharedArtifacts. krak serve hangs one across its
// whole machine cache, so requests against different platforms still share
// every partition.
type SharedArtifacts struct {
	store *artifacts.Store
}

// NewSharedArtifacts returns an empty cross-machine artifact cache.
func NewSharedArtifacts() *SharedArtifacts {
	return &SharedArtifacts{store: artifacts.NewStore()}
}

// NewSharedArtifactsAt returns a cross-machine artifact cache whose
// partition vectors persist to a content-addressed cache directory at
// dir: vectors computed by any process land on disk, survive restarts,
// and are shared by every replica pointed at the same directory. Corrupt
// or version-skewed entries are detected (checksum + schema stamp) and
// silently recomputed.
func NewSharedArtifactsAt(dir string) (*SharedArtifacts, error) {
	dc, err := artifacts.OpenDiskCache(dir)
	if err != nil {
		return nil, fmt.Errorf("%w: artifact cache dir: %w", ErrBadOption, err)
	}
	return &SharedArtifacts{store: artifacts.NewStoreWithDisk(dc)}, nil
}

// ArtifactStats is a point-in-time snapshot of a SharedArtifacts cache's
// activity: how many partition vectors were computed from scratch, and —
// when a cache directory is attached — the disk tier's traffic.
type ArtifactStats struct {
	// PartitionComputes counts partitioner runs: vector requests served by
	// neither the in-memory cache nor the disk tier.
	PartitionComputes int64
	// DiskHits/DiskMisses/DiskWrites/DiskCorrupt count disk-tier lookups
	// that verified, lookups that missed, entries written, and entries
	// discarded as corrupt or version-skewed (all zero without a cache
	// directory).
	DiskHits, DiskMisses, DiskWrites, DiskCorrupt int64
}

// Stats snapshots the cache's activity counters.
func (sa *SharedArtifacts) Stats() ArtifactStats {
	ds := sa.store.Disk().Stats()
	return ArtifactStats{
		PartitionComputes: sa.store.PartitionComputes(),
		DiskHits:          ds.Hits,
		DiskMisses:        ds.Misses,
		DiskWrites:        ds.Writes,
		DiskCorrupt:       ds.Corrupt,
	}
}

// WithSharedArtifacts attaches a cross-machine artifact cache to the
// machine, replacing its private one.
func WithSharedArtifacts(sa *SharedArtifacts) MachineOption {
	return func(m *Machine) error {
		if sa == nil || sa.store == nil {
			return fmt.Errorf("%w: nil shared artifacts", ErrBadOption)
		}
		m.env.Artifacts = sa.store
		return nil
	}
}

// Machine describes the platform predictions and simulations run against:
// the interconnect, the ground-truth computation cost tables, the
// partitioner seed, the measurement repeat count, and how many concurrent
// jobs its worker pool runs (WithParallelism). A Machine memoizes the
// expensive shared artifacts (decks, partitions, calibrations) in
// single-flight caches that concurrent Sessions and Sweeps share safely,
// so reuse one Machine across Sessions whenever the platform is the same.
type Machine struct {
	interconnect string
	name         string
	serialize    bool
	quick        bool
	repeatsSet   bool
	computeScale float64

	topology *netmodel.Topology

	env  *experiments.Env
	pool *engine.Pool

	// featOnce/featEnv lazily build the baseline-rate environment
	// Session.Calibrate extracts fit features in (see featureEnv).
	featOnce sync.Once
	featEnv  *experiments.Env
}

// MachineOption configures NewMachine.
type MachineOption func(*Machine) error

// WithInterconnect selects the network model by name: "qsnet" (the paper's
// QsNet-I), "gige", or "infiniband".
func WithInterconnect(name string) MachineOption {
	return func(m *Machine) error {
		net, err := interconnectByName(name)
		if err != nil {
			return err
		}
		m.interconnect = name
		m.env.Net = net
		return nil
	}
}

// WithNetworkSpec installs a custom piecewise interconnect in place of a
// preset — the option behind machine files' network/segment directives
// and the wire MachineSpec's network field. Invalid specs return
// ErrBadMachineSpec.
func WithNetworkSpec(ns NetworkSpec) MachineOption {
	return func(m *Machine) error {
		net, err := ns.Model()
		if err != nil {
			return err
		}
		m.interconnect = "custom"
		m.env.Net = net
		return nil
	}
}

// WithTopologySpec attaches a physical interconnect topology to the
// machine's network model, refining its collective times with distance
// and bisection-contention terms (machine files' topology directive and
// the wire MachineSpec's topology field). Applied once, after all
// options, so it composes with WithInterconnect and WithNetworkSpec in
// any order. Invalid specs return ErrBadMachineSpec.
func WithTopologySpec(ts TopologySpec) MachineOption {
	return func(m *Machine) error {
		t, err := ts.Topology()
		if err != nil {
			return err
		}
		m.topology = &t
		return nil
	}
}

// WithComputeScale scales the machine's ground-truth computation cost
// tables by f relative to the ES45 baseline: 2 is a processor half as
// fast, 0.5 twice as fast. Calibration fits exactly this factor.
func WithComputeScale(f float64) MachineOption {
	return func(m *Machine) error {
		if !(f > 0) || f > 1e6 {
			return fmt.Errorf("%w: compute scale %g", ErrBadOption, f)
		}
		m.computeScale = f
		return nil
	}
}

// WithName sets the machine's display name (machine files' machine
// directive).
func WithName(name string) MachineOption {
	return func(m *Machine) error {
		m.name = name
		return nil
	}
}

// WithSeed sets the partitioner seed (default 1).
func WithSeed(seed uint64) MachineOption {
	return func(m *Machine) error {
		m.env.Seed = seed
		return nil
	}
}

// WithRepeats sets how many simulated iterations are averaged per
// measurement (default 5).
func WithRepeats(n int) MachineOption {
	return func(m *Machine) error {
		if n <= 0 {
			return fmt.Errorf("%w: repeats %d", ErrBadOption, n)
		}
		m.env.Repeats = n
		m.repeatsSet = true
		return nil
	}
}

// WithSerializedSends disables message overlap in the simulator, mirroring
// the no-overlap accounting of the model's Equation (5).
func WithSerializedSends() MachineOption {
	return func(m *Machine) error {
		m.serialize = true
		return nil
	}
}

// WithQuick scales the standard decks and calibration campaigns down so
// smoke tests and CI stay fast, and lowers the default repeat count to 2
// (an explicit WithRepeats wins regardless of option order).
// Paper-faithful runs leave it off.
func WithQuick() MachineOption {
	return func(m *Machine) error {
		m.quick = true
		m.env.Quick = true
		return nil
	}
}

// WithParallelism bounds the machine's worker pool to n concurrent jobs.
// The pool drives Session.Sweep, Session.Experiments, and the row sweeps
// inside individual experiments; results are byte-identical at every n.
// The default (without this option) is runtime.GOMAXPROCS, i.e. as wide as
// the hardware allows; n = 1 forces fully serial execution.
func WithParallelism(n int) MachineOption {
	return func(m *Machine) error {
		if n <= 0 {
			return fmt.Errorf("%w: parallelism %d", ErrBadOption, n)
		}
		m.pool = engine.New(n)
		return nil
	}
}

func interconnectByName(name string) (*netmodel.Model, error) {
	switch name {
	case "qsnet":
		return netmodel.QsNetI(), nil
	case "gige":
		return netmodel.GigE(), nil
	case "infiniband":
		return netmodel.Infiniband(), nil
	}
	return nil, fmt.Errorf("%w: %q (qsnet|gige|infiniband)", ErrUnknownInterconnect, name)
}

// NewMachine builds a machine; with no options it is the paper's
// QsNet-I / ES45 cluster.
func NewMachine(opts ...MachineOption) (*Machine, error) {
	m := &Machine{
		interconnect: "qsnet",
		env:          experiments.NewEnv(),
	}
	for _, opt := range opts {
		if err := opt(m); err != nil {
			return nil, err
		}
	}
	if m.quick && !m.repeatsSet {
		m.env.Repeats = 2
	}
	if m.topology != nil {
		// Applied once, after all options, so a later WithInterconnect or
		// WithNetworkSpec cannot silently drop the topology.
		net, err := m.env.Net.WithTopology(*m.topology)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadMachineSpec, err)
		}
		m.env.Net = net
	}
	if m.computeScale == 0 {
		m.computeScale = 1
	}
	if m.computeScale != 1 {
		// Applied once, after all options, so option order cannot compound
		// the scale.
		m.env.Costs = m.env.Costs.Scaled(m.computeScale)
	}
	if m.pool == nil {
		m.pool = engine.New(0) // GOMAXPROCS
	}
	m.env.Pool = m.pool
	return m, nil
}

func mustMachine(opts ...MachineOption) *Machine {
	m, err := NewMachine(opts...)
	if err != nil {
		panic(err)
	}
	return m
}

// QsNetCluster is the paper's validation platform: AlphaServer ES45 nodes
// on Quadrics QsNet-I, with the ES45 ground-truth cost tables.
func QsNetCluster() *Machine { return mustMachine() }

// GigECluster is the commodity gigabit-Ethernet what-if platform.
func GigECluster() *Machine { return mustMachine(WithInterconnect("gige")) }

// InfinibandCluster is the low-latency what-if platform.
func InfinibandCluster() *Machine { return mustMachine(WithInterconnect("infiniband")) }

// Interconnect returns the configured interconnect's short name
// ("qsnet", "gige", "infiniband").
func (m *Machine) Interconnect() string { return m.interconnect }

// NetworkName returns the network model's descriptive name, e.g.
// "QsNet-I (Elan3) / ES45".
func (m *Machine) NetworkName() string { return m.env.Net.Name() }

// Seed returns the partitioner seed.
func (m *Machine) Seed() uint64 { return m.env.Seed }

// Repeats returns the measurement repeat count.
func (m *Machine) Repeats() int {
	if m.env.Repeats <= 0 {
		return 5
	}
	return m.env.Repeats
}

// Quick reports whether the machine is in scaled-down mode.
func (m *Machine) Quick() bool { return m.quick }

// Parallelism returns the worker-pool width Sweep and Experiments use.
func (m *Machine) Parallelism() int { return m.pool.Workers() }

// Name returns the machine's display name ("" unless set by WithName or
// a machine file).
func (m *Machine) Name() string { return m.name }

// Topology describes the machine's interconnect topology, e.g. "flat"
// (the default), "fat-tree radix 36", "8x8x8 torus".
func (m *Machine) Topology() string {
	if m.topology == nil {
		return "flat"
	}
	return m.topology.String()
}

// ComputeScale returns the machine's compute cost multiplier relative to
// the ES45 baseline (1 unless WithComputeScale changed it).
func (m *Machine) ComputeScale() float64 { return m.computeScale }

// featureEnv returns the baseline-rate environment Session.Calibrate
// computes fit features in: the reference ES45 cost tables regardless of
// this machine's compute scale or network, with the machine's seed,
// quick mode, and repeat count, so feature decks line up with the decks
// the observations name. Built once and memoized.
func (m *Machine) featureEnv() *experiments.Env {
	m.featOnce.Do(func() {
		e := experiments.NewEnv()
		e.Seed = m.env.Seed
		e.Quick = m.env.Quick
		e.Repeats = m.env.Repeats
		// Share the machine's artifact store: decks and partitions depend
		// only on keys both environments agree on (size, quick, seed), so
		// calibration features reuse the machine's cached partitions.
		e.Artifacts = m.env.Store()
		m.featEnv = e
	})
	return m.featEnv
}

// deckCalibration resolves the §3.1 least-squares deck calibration,
// memoized per (deck, campaign) pair in the environment's single-flight
// cache.
func (m *Machine) deckCalibration(d *mesh.Deck, calPEs []int) (*compute.Calibrated, error) {
	cal, err := m.env.DeckCalibration(d, calPEs)
	if err != nil {
		return nil, modelErr("deck calibration", err)
	}
	return cal, nil
}
