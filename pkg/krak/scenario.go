package krak

import (
	"fmt"

	"krak/internal/mesh"
	"krak/internal/partition"
)

// Scenario describes one workload: the input deck, the processor count,
// the model variant, the partitioner, and the hydro-run shape. Build it
// with NewScenario and functional options; the zero-option scenario is the
// paper's medium deck on 128 processors under the general/homogeneous
// model.
type Scenario struct {
	deckName string
	deckSize mesh.StandardSize
	custom   bool
	w, h     int
	parsed   *mesh.Deck // from WithDeckSpec; wins over deckSize/dims

	pe          int
	model       Model
	partitioner string
	iterations  int // 0 ⇒ the machine's repeat count
	calPEs      []int

	steps int // hydro timesteps
	ranks int // hydro goroutine ranks

	progressEvery int
	progressFn    func(HydroTick)
}

// HydroTick is a periodic in-run diagnostic snapshot delivered to a
// WithHydroProgress callback.
type HydroTick struct {
	Cycle          int
	Time           float64
	DT             float64
	BurnedCells    int
	MaxPressure    float64
	KineticEnergy  float64
	InternalEnergy float64
}

// ScenarioOption configures NewScenario.
type ScenarioOption func(*Scenario) error

// WithDeck selects a standard deck by name: "small", "medium", "large", or
// "figure2".
func WithDeck(name string) ScenarioOption {
	return func(sc *Scenario) error {
		sz, err := deckSizeByName(name)
		if err != nil {
			return err
		}
		sc.deckName, sc.deckSize, sc.custom, sc.parsed = name, sz, false, nil
		return nil
	}
}

// WithDeckDims builds a custom layered deck of w×h cells instead of a
// standard one — the hydro mini-app's usual input.
func WithDeckDims(w, h int) ScenarioOption {
	return func(sc *Scenario) error {
		if w <= 0 || h <= 0 {
			return fmt.Errorf("%w: deck dims %dx%d", ErrBadOption, w, h)
		}
		sc.deckName = fmt.Sprintf("layered-%dx%d", w, h)
		sc.custom, sc.w, sc.h, sc.parsed = true, w, h, nil
		return nil
	}
}

// WithDeckSpec parses src as the textual deck format (see the format
// documentation in cmd/krak: grid/layered/uniform/cells directives) and
// uses the resulting deck instead of a standard one — the path behind
// the CLI's -deck-file flags. Parse failures return ErrBadDeckSpec.
func WithDeckSpec(src []byte) ScenarioOption {
	return func(sc *Scenario) error {
		d, err := mesh.ParseDeck(src)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrBadDeckSpec, err)
		}
		sc.deckName, sc.parsed, sc.custom = d.Name, d, false
		return nil
	}
}

// WithPE sets the processor count the prediction or simulation targets.
func WithPE(n int) ScenarioOption {
	return func(sc *Scenario) error {
		if n <= 0 {
			return fmt.Errorf("%w: %d", ErrBadPE, n)
		}
		sc.pe = n
		return nil
	}
}

// WithModel selects the analytic model variant Predict uses.
func WithModel(m Model) ScenarioOption {
	return func(sc *Scenario) error {
		if !m.valid() {
			return fmt.Errorf("%w: %v", ErrUnknownModel, m)
		}
		sc.model = m
		return nil
	}
}

// WithPartitioner selects the partitioning algorithm by name: "multilevel"
// (METIS-style, the default), "rcb", "sfc", "strips", or "random".
func WithPartitioner(name string) ScenarioOption {
	return func(sc *Scenario) error {
		if _, err := partitionerByName(name, 0); err != nil {
			return err
		}
		sc.partitioner = name
		return nil
	}
}

// WithIterations sets how many simulated iterations Simulate averages,
// overriding the machine's repeat count.
func WithIterations(n int) ScenarioOption {
	return func(sc *Scenario) error {
		if n <= 0 {
			return fmt.Errorf("%w: iterations %d", ErrBadOption, n)
		}
		sc.iterations = n
		return nil
	}
}

// WithCalibrationPEs sets the processor counts of the mesh-specific
// model's least-squares calibration campaign (default 2, 8, 32).
func WithCalibrationPEs(pes ...int) ScenarioOption {
	return func(sc *Scenario) error {
		if len(pes) == 0 {
			return fmt.Errorf("%w: empty calibration campaign", ErrBadOption)
		}
		for _, p := range pes {
			if p <= 0 {
				return fmt.Errorf("%w: calibration %d", ErrBadPE, p)
			}
		}
		sc.calPEs = append([]int(nil), pes...)
		return nil
	}
}

// WithSteps sets how many timesteps RunHydro advances (default 100).
func WithSteps(n int) ScenarioOption {
	return func(sc *Scenario) error {
		if n <= 0 {
			return fmt.Errorf("%w: steps %d", ErrBadOption, n)
		}
		sc.steps = n
		return nil
	}
}

// WithHydroProgress invokes fn after every `every` completed timesteps of
// a serial RunHydro with a diagnostics snapshot — the in-run progress the
// mini-app prints on long runs. Parallel runs ignore it.
func WithHydroProgress(every int, fn func(HydroTick)) ScenarioOption {
	return func(sc *Scenario) error {
		if every <= 0 {
			return fmt.Errorf("%w: progress interval %d", ErrBadOption, every)
		}
		if fn == nil {
			return fmt.Errorf("%w: nil progress callback", ErrBadOption)
		}
		sc.progressEvery, sc.progressFn = every, fn
		return nil
	}
}

// WithRanks sets the hydro mini-app's goroutine rank count (1 = serial).
func WithRanks(n int) ScenarioOption {
	return func(sc *Scenario) error {
		if n <= 0 {
			return fmt.Errorf("%w: ranks %d", ErrBadOption, n)
		}
		sc.ranks = n
		return nil
	}
}

func deckSizeByName(name string) (mesh.StandardSize, error) {
	switch name {
	case "small":
		return mesh.Small, nil
	case "medium":
		return mesh.Medium, nil
	case "large":
		return mesh.Large, nil
	case "figure2":
		return mesh.Figure2, nil
	}
	return 0, fmt.Errorf("%w: %q (small|medium|large|figure2)", ErrUnknownDeck, name)
}

func partitionerByName(name string, seed uint64) (partition.Partitioner, error) {
	switch name {
	case "multilevel":
		return partition.NewMultilevel(seed), nil
	case "rcb":
		return partition.RCB{}, nil
	case "sfc":
		return partition.SFC{}, nil
	case "strips":
		return partition.Strips{}, nil
	case "random":
		return partition.Random{Seed: seed}, nil
	}
	return nil, fmt.Errorf("%w: %q (multilevel|rcb|sfc|strips|random)", ErrUnknownPartitioner, name)
}

// NewScenario builds a scenario. Defaults: the medium deck on 128
// processors, the general/homogeneous model, the multilevel partitioner,
// 100 hydro timesteps on 1 rank.
func NewScenario(opts ...ScenarioOption) (*Scenario, error) {
	sc := &Scenario{
		deckName:    "medium",
		deckSize:    mesh.Medium,
		pe:          128,
		model:       GeneralHomogeneous,
		partitioner: "multilevel",
		calPEs:      []int{2, 8, 32},
		steps:       100,
		ranks:       1,
	}
	for _, opt := range opts {
		if err := opt(sc); err != nil {
			return nil, err
		}
	}
	return sc, nil
}

// Deck returns the scenario's deck name.
func (sc *Scenario) Deck() string { return sc.deckName }

// PE returns the target processor count.
func (sc *Scenario) PE() int { return sc.pe }

// ModelChoice returns the model variant Predict will use.
func (sc *Scenario) ModelChoice() Model { return sc.model }

// Partitioner returns the partitioner name.
func (sc *Scenario) Partitioner() string { return sc.partitioner }

// Steps returns the hydro timestep count.
func (sc *Scenario) Steps() int { return sc.steps }

// Ranks returns the hydro rank count.
func (sc *Scenario) Ranks() int { return sc.ranks }
