package krak

import (
	"encoding/json"
	"fmt"
	"strings"

	"krak/internal/textplot"
)

// Kind labels which Session method produced a Result.
type Kind string

// The result kinds.
const (
	KindPredict    Kind = "predict"
	KindSimulate   Kind = "simulate"
	KindHydro      Kind = "hydro"
	KindPartition  Kind = "partition"
	KindExperiment Kind = "experiment"
)

// PhaseBreakdown is one phase's share of an iteration. For predictions the
// point-to-point and collective shares are split out and Comm is their
// sum; for simulations Comm is the phase duration minus the slowest
// processor's compute time (overlap makes a finer split ill-defined) and
// the split fields are zero.
type PhaseBreakdown struct {
	Phase        int     `json:"phase"`
	Compute      float64 `json:"compute_s"`
	PointToPoint float64 `json:"p2p_s,omitempty"`
	Collective   float64 `json:"collective_s,omitempty"`
	Comm         float64 `json:"comm_s"`
	Total        float64 `json:"total_s"`
}

// IterationStats summarizes a multi-iteration simulation.
type IterationStats struct {
	Count             int     `json:"count"`
	MeanSeconds       float64 `json:"mean_s"`
	MinSeconds        float64 `json:"min_s"`
	MaxSeconds        float64 `json:"max_s"`
	CollectiveSeconds float64 `json:"collective_s"`
}

// PEStat is one processor's share of a partition.
type PEStat struct {
	PE         int    `json:"pe"`
	Cells      int    `json:"cells"`
	ByMaterial [4]int `json:"by_material"`
	Neighbors  int    `json:"neighbors"`
	GhostNodes int    `json:"ghost_nodes"`
}

// PartitionReport describes a partition's quality.
type PartitionReport struct {
	Algorithm    string   `json:"algorithm"`
	EdgeCut      int      `json:"edge_cut"`
	Imbalance    float64  `json:"imbalance"`
	MaxNeighbors int      `json:"max_neighbors"`
	PerPE        []PEStat `json:"per_pe,omitempty"`
	Map          string   `json:"map,omitempty"`
}

// HydroReport carries the mini-app's physics diagnostics and per-phase
// wall-clock profile.
type HydroReport struct {
	Ranks          int       `json:"ranks"`
	Steps          int       `json:"steps"`
	Cycle          int       `json:"cycle"`
	Time           float64   `json:"time"`
	TotalMass      float64   `json:"total_mass"`
	InternalEnergy float64   `json:"internal_energy"`
	KineticEnergy  float64   `json:"kinetic_energy"`
	EnergyReleased float64   `json:"energy_released"`
	BurnedCells    int       `json:"burned_cells"`
	MaxPressure    float64   `json:"max_pressure"`
	MinVolume      float64   `json:"min_volume"`
	PhaseSeconds   []float64 `json:"phase_seconds"`
}

// ExperimentReport is one regenerated paper table or figure.
type ExperimentReport struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header,omitempty"`
	Rows   [][]string `json:"rows,omitempty"`
	Text   string     `json:"text,omitempty"`
	Notes  string     `json:"notes,omitempty"`
}

// Result is the unified answer every Session method returns. Fields not
// relevant to the producing method are zero and omitted from JSON.
type Result struct {
	Kind    Kind   `json:"kind"`
	Deck    string `json:"deck,omitempty"`
	Cells   int    `json:"cells,omitempty"`
	PEs     int    `json:"pes,omitempty"`
	Network string `json:"network,omitempty"`
	Model   string `json:"model,omitempty"`

	// TotalSeconds is the headline number: predicted iteration time for
	// Predict, mean measured iteration time for Simulate.
	TotalSeconds   float64 `json:"total_s,omitempty"`
	ComputeSeconds float64 `json:"compute_s,omitempty"`
	CommSeconds    float64 `json:"comm_s,omitempty"`

	Phases     []PhaseBreakdown  `json:"phases,omitempty"`
	Iterations *IterationStats   `json:"iterations,omitempty"`
	Partition  *PartitionReport  `json:"partition,omitempty"`
	Hydro      *HydroReport      `json:"hydro,omitempty"`
	Experiment *ExperimentReport `json:"experiment,omitempty"`
}

// ResultSchema identifies the JSON layout Result marshals to, so machine
// consumers can detect layout changes across releases.
const ResultSchema = "krak.result/v1"

// MarshalJSON renders the result for machine consumption (the CLI's
// --json flag), stamping the schema identifier alongside the fields.
func (r *Result) MarshalJSON() ([]byte, error) {
	type alias Result
	b, err := json.Marshal(struct {
		Schema string `json:"schema"`
		*alias
	}{Schema: ResultSchema, alias: (*alias)(r)})
	if err != nil {
		return nil, fmt.Errorf("%w: encoding result: %w", ErrSchema, err)
	}
	return b, nil
}

// Render formats the result for a terminal, mirroring the JSON content.
func (r *Result) Render() string {
	var b strings.Builder
	switch r.Kind {
	case KindPredict:
		fmt.Fprintf(&b, "Deck %s (%d cells) on %d PEs, %s model, network %s\n\n",
			r.Deck, r.Cells, r.PEs, r.Model, r.Network)
		header := []string{"Phase", "Compute (ms)", "P2P (ms)", "Collective (ms)", "Total (ms)"}
		var rows [][]string
		for _, ph := range r.Phases {
			rows = append(rows, []string{
				fmt.Sprintf("%d", ph.Phase),
				fmt.Sprintf("%.3f", ph.Compute*1e3),
				fmt.Sprintf("%.3f", ph.PointToPoint*1e3),
				fmt.Sprintf("%.3f", ph.Collective*1e3),
				fmt.Sprintf("%.3f", ph.Total*1e3),
			})
		}
		b.WriteString(textplot.Table(header, rows))
		fmt.Fprintf(&b, "\nPredicted iteration time: %.1f ms (compute %.1f ms, communication %.1f ms)\n",
			r.TotalSeconds*1e3, r.ComputeSeconds*1e3, r.CommSeconds*1e3)

	case KindSimulate:
		fmt.Fprintf(&b, "Deck %s (%d cells) on %d PEs — network %s\n",
			r.Deck, r.Cells, r.PEs, r.Network)
		if r.Partition != nil {
			fmt.Fprintf(&b, "Partition: %s, edge cut %d faces, imbalance %.3f, max neighbors %d\n",
				r.Partition.Algorithm, r.Partition.EdgeCut, r.Partition.Imbalance, r.Partition.MaxNeighbors)
		}
		b.WriteByte('\n')
		header := []string{"Phase", "Duration (ms)", "Comm share (ms)", "Max compute (ms)"}
		var rows [][]string
		for _, ph := range r.Phases {
			rows = append(rows, []string{
				fmt.Sprintf("%d", ph.Phase),
				fmt.Sprintf("%.3f", ph.Total*1e3),
				fmt.Sprintf("%.3f", ph.Comm*1e3),
				fmt.Sprintf("%.3f", ph.Compute*1e3),
			})
		}
		b.WriteString(textplot.Table(header, rows))
		if it := r.Iterations; it != nil {
			fmt.Fprintf(&b, "\nIteration time over %d iterations: mean %.1f ms (min %.1f, max %.1f), collectives %.1f ms\n",
				it.Count, it.MeanSeconds*1e3, it.MinSeconds*1e3, it.MaxSeconds*1e3, it.CollectiveSeconds*1e3)
		}

	case KindHydro:
		h := r.Hydro
		if h == nil {
			fmt.Fprintf(&b, "Result(kind=%s, no hydro report)\n", r.Kind)
			break
		}
		fmt.Fprintf(&b, "Deck %s: %d cells, %d steps on %d rank(s)\n\n", r.Deck, r.Cells, h.Steps, h.Ranks)
		fmt.Fprintf(&b, "Final: cycle %d, t=%.4f\n", h.Cycle, h.Time)
		fmt.Fprintf(&b, "  mass            %.6f\n", h.TotalMass)
		fmt.Fprintf(&b, "  internal energy %.6f\n", h.InternalEnergy)
		fmt.Fprintf(&b, "  kinetic energy  %.6f\n", h.KineticEnergy)
		fmt.Fprintf(&b, "  released        %.6f\n", h.EnergyReleased)
		fmt.Fprintf(&b, "  burned cells    %d\n", h.BurnedCells)
		fmt.Fprintf(&b, "  max pressure    %.4f\n", h.MaxPressure)
		labels := make([]string, len(h.PhaseSeconds))
		vals := make([]float64, len(h.PhaseSeconds))
		for i := range labels {
			labels[i] = fmt.Sprintf("phase %2d", i+1)
			vals[i] = h.PhaseSeconds[i] * 1e3
		}
		b.WriteByte('\n')
		b.WriteString(textplot.Bars("Wall-clock per phase (ms, accumulated):", labels, vals, 40))

	case KindPartition:
		p := r.Partition
		if p == nil {
			fmt.Fprintf(&b, "Result(kind=%s, no partition report)\n", r.Kind)
			break
		}
		fmt.Fprintf(&b, "Deck %s (%d cells) into %d parts with %s\n", r.Deck, r.Cells, r.PEs, p.Algorithm)
		fmt.Fprintf(&b, "  edge cut      %d faces\n", p.EdgeCut)
		fmt.Fprintf(&b, "  imbalance     %.3f\n", p.Imbalance)
		fmt.Fprintf(&b, "  max neighbors %d\n\n", p.MaxNeighbors)
		header := []string{"PE", "Cells", "HE Gas", "Al(In)", "Foam", "Al(Out)", "Neighbors", "Ghost nodes"}
		var rows [][]string
		for _, s := range p.PerPE {
			rows = append(rows, []string{
				fmt.Sprintf("%d", s.PE),
				fmt.Sprintf("%d", s.Cells),
				fmt.Sprintf("%d", s.ByMaterial[0]),
				fmt.Sprintf("%d", s.ByMaterial[1]),
				fmt.Sprintf("%d", s.ByMaterial[2]),
				fmt.Sprintf("%d", s.ByMaterial[3]),
				fmt.Sprintf("%d", s.Neighbors),
				fmt.Sprintf("%d", s.GhostNodes),
			})
		}
		b.WriteString(textplot.Table(header, rows))
		if p.Map != "" {
			b.WriteByte('\n')
			b.WriteString(p.Map)
		}

	case KindExperiment:
		e := r.Experiment
		if e == nil {
			fmt.Fprintf(&b, "Result(kind=%s, no experiment report)\n", r.Kind)
			break
		}
		fmt.Fprintf(&b, "== %s: %s ==\n\n", e.ID, e.Title)
		if len(e.Header) > 0 {
			b.WriteString(textplot.Table(e.Header, e.Rows))
			b.WriteByte('\n')
		}
		if e.Text != "" {
			b.WriteString(e.Text)
			b.WriteByte('\n')
		}
		if e.Notes != "" {
			fmt.Fprintf(&b, "Notes: %s\n", e.Notes)
		}

	default:
		fmt.Fprintf(&b, "Result(kind=%s)\n", r.Kind)
	}
	return b.String()
}
