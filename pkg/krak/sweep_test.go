package krak

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// sweepGrid builds a small PE-count grid over the small deck.
func sweepGrid(t *testing.T, pes ...int) []*Scenario {
	t.Helper()
	var grid []*Scenario
	for _, pe := range pes {
		sc, err := NewScenario(WithDeck("small"), WithPE(pe))
		if err != nil {
			t.Fatal(err)
		}
		grid = append(grid, sc)
	}
	return grid
}

func TestSweepPredictGrid(t *testing.T) {
	m, err := NewMachine(WithQuick(), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if m.Parallelism() != 4 {
		t.Fatalf("Parallelism() = %d, want 4", m.Parallelism())
	}
	base, err := NewScenario()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(m, base)
	if err != nil {
		t.Fatal(err)
	}
	pes := []int{4, 8, 16, 32}
	sr, err := s.Sweep(context.Background(), SweepPredict, sweepGrid(t, pes...))
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Points) != len(pes) {
		t.Fatalf("points = %d, want %d", len(sr.Points), len(pes))
	}
	for i, pt := range sr.Points {
		if pt.Index != i || pt.PEs != pes[i] || pt.Deck != "small" {
			t.Fatalf("point %d = {Index:%d Deck:%s PEs:%d}, want in-order small/%d",
				i, pt.Index, pt.Deck, pt.PEs, pes[i])
		}
		if pt.Model != "general-homo" {
			t.Fatalf("point %d model = %q", i, pt.Model)
		}
		if pt.Result == nil || pt.Result.Kind != KindPredict || pt.Result.TotalSeconds <= 0 {
			t.Fatalf("point %d result = %+v", i, pt.Result)
		}
	}
	if sr.WallSeconds <= 0 || sr.WorkSeconds <= 0 {
		t.Fatalf("timing not recorded: wall %v work %v", sr.WallSeconds, sr.WorkSeconds)
	}
	out := sr.Render()
	for _, want := range []string{"Sweep predict over 4 points", "general-homo", "speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestSweepMatchesStandaloneSessions checks every sweep point's Result is
// identical to what a dedicated Session produces — the concurrency must
// not change a single byte of rendered output.
func TestSweepMatchesStandaloneSessions(t *testing.T) {
	m, err := NewMachine(WithQuick(), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewScenario()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(m, base)
	if err != nil {
		t.Fatal(err)
	}
	grid := sweepGrid(t, 4, 8, 16)
	sr, err := s.Sweep(context.Background(), SweepSimulate, grid)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh machine (fresh caches) evaluating each point serially.
	m2, err := NewMachine(WithQuick(), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range grid {
		solo, err := NewSession(m2, sc)
		if err != nil {
			t.Fatal(err)
		}
		want, err := solo.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		if got, exp := sr.Points[i].Result.Render(), want.Render(); got != exp {
			t.Errorf("point %d output differs from standalone session:\n--- sweep ---\n%s\n--- standalone ---\n%s",
				i, got, exp)
		}
	}
}

func TestSweepEmptyGridUsesSessionScenario(t *testing.T) {
	m, err := NewMachine(WithQuick())
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewScenario(WithDeck("small"), WithPE(8))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(m, sc)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := s.Sweep(context.Background(), SweepPredict, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Points) != 1 || sr.Points[0].PEs != 8 || sr.Points[0].Deck != "small" {
		t.Fatalf("points = %+v", sr.Points)
	}
}

func TestSweepValidation(t *testing.T) {
	m, err := NewMachine(WithQuick())
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewScenario()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(m, sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sweep(context.Background(), SweepOp("evaporate"), nil); !errors.Is(err, ErrBadOption) {
		t.Fatalf("bad op error = %v", err)
	}
	if _, err := s.Sweep(context.Background(), SweepPredict, []*Scenario{nil}); !errors.Is(err, ErrBadOption) {
		t.Fatalf("nil scenario error = %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Sweep(ctx, SweepPredict, sweepGrid(t, 4, 8)); err == nil {
		t.Fatal("cancelled context did not abort sweep")
	}
}

func TestParseSweepOp(t *testing.T) {
	for s, want := range map[string]SweepOp{"predict": SweepPredict, "simulate": SweepSimulate} {
		got, err := ParseSweepOp(s)
		if err != nil || got != want {
			t.Fatalf("ParseSweepOp(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseSweepOp("hydro"); !errors.Is(err, ErrBadOption) {
		t.Fatalf("ParseSweepOp(hydro) err = %v", err)
	}
}

func TestWithParallelismValidation(t *testing.T) {
	if _, err := NewMachine(WithParallelism(0)); !errors.Is(err, ErrBadOption) {
		t.Fatalf("WithParallelism(0) err = %v", err)
	}
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	if m.Parallelism() < 1 {
		t.Fatalf("default parallelism = %d", m.Parallelism())
	}
}

func TestSessionExperimentsBatch(t *testing.T) {
	m, err := NewMachine(WithQuick(), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewScenario()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(m, sc)
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"table3", "table1", "figure4"}
	rs, err := s.Experiments(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if rs[i].Kind != KindExperiment || rs[i].Experiment == nil || rs[i].Experiment.ID != id {
			t.Fatalf("result %d = %+v, want experiment %s", i, rs[i], id)
		}
	}
	if _, err := s.Experiments(context.Background(), []string{"nope"}); !errors.Is(err, ErrUnknownExperiment) {
		t.Fatalf("unknown experiment id error = %v, want ErrUnknownExperiment", err)
	}
}
