package krak

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// zooMachine builds a session-backed synthetic dataset generator from a
// machine file, in heterogeneous mode (exactly linear in the machine
// parameters, so drift verdicts are about the machine, not model error).
func zooDataset(t *testing.T, machineFile string, decks []string, pes []int) *Dataset {
	t.Helper()
	m, err := LoadMachine([]byte(machineFile))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := calibSession(t, m, GeneralHeterogeneous).SynthesizeDataset(context.Background(), SweepPredict, decks, pes)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

const (
	zooMachineA = "machine labA\nnetwork a-net\nsegment 0 20 200\ncompute-scale 1.7\nquick\n"
	// The same machine after a network downgrade: 10x the latency, a
	// fifth of the bandwidth. Compute is untouched, so only the
	// communication terms move.
	zooMachineB = "machine labB\nnetwork b-net\nsegment 0 200 40\ncompute-scale 1.7\nquick\n"
)

// TestCalibrateAppendDrift is the drift-detection regression test:
// calibrate on machine A's measurements, then append fresh data — the
// drift flag must stay quiet for more machine-A data and trip when the
// fresh data comes from machine B's degraded network.
func TestCalibrateAppendDrift(t *testing.T) {
	base := zooDataset(t, zooMachineA, []string{"small", "figure2"}, []int{2, 4, 8, 16, 32})
	freshSame := zooDataset(t, zooMachineA, []string{"small"}, []int{3, 6, 12, 24})
	freshMoved := zooDataset(t, zooMachineB, []string{"small"}, []int{3, 6, 12, 24})

	m, err := NewMachine(WithQuick())
	if err != nil {
		t.Fatal(err)
	}
	s := calibSession(t, m, GeneralHeterogeneous)
	ctx := context.Background()

	cr, err := s.CalibrateAppend(ctx, base, freshSame, CalibrateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cr.Drift == nil {
		t.Fatal("append result carries no drift report")
	}
	if cr.Drift.Flagged {
		t.Errorf("same-machine append flagged drift: %+v", cr.Drift)
	}
	if cr.Drift.FreshObservations != len(freshSame.Observations) {
		t.Errorf("drift report counts %d fresh observations, want %d",
			cr.Drift.FreshObservations, len(freshSame.Observations))
	}
	if cr.Drift.Band <= 0 {
		t.Errorf("drift band %.3g, want > 0", cr.Drift.Band)
	}
	if cr.Observations != len(base.Observations)+len(freshSame.Observations) {
		t.Errorf("merged fit covers %d observations, want %d",
			cr.Observations, len(base.Observations)+len(freshSame.Observations))
	}

	moved, err := s.CalibrateAppend(ctx, base, freshMoved, CalibrateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if moved.Drift == nil || !moved.Drift.Flagged {
		t.Fatalf("changed-machine append did not flag drift: %+v", moved.Drift)
	}
	if moved.Drift.FreshRelRMS <= moved.Drift.Band {
		t.Errorf("flagged drift with rel RMS %.3g inside band %.3g",
			moved.Drift.FreshRelRMS, moved.Drift.Band)
	}
	// The verdicts must be ordered: moving machines produces strictly
	// larger fresh residuals than staying put.
	if moved.Drift.FreshRelRMS <= cr.Drift.FreshRelRMS {
		t.Errorf("moved rel RMS %.3g not above same-machine %.3g",
			moved.Drift.FreshRelRMS, cr.Drift.FreshRelRMS)
	}
}

// TestCalibrateFormSelection covers the model zoo through the façade:
// auto mode produces a scoreboard covering every registered form with
// exactly one selected winner, every form is individually fittable by
// name, and unknown forms are rejected with the calibration sentinel.
func TestCalibrateFormSelection(t *testing.T) {
	ds := zooDataset(t, zooMachineA, []string{"small", "figure2"}, []int{2, 4, 8, 16, 32})
	m, err := NewMachine(WithQuick())
	if err != nil {
		t.Fatal(err)
	}
	s := calibSession(t, m, GeneralHeterogeneous)
	ctx := context.Background()

	cr, err := s.Calibrate(ctx, ds, CalibrateOptions{Form: FormAuto, Folds: 5})
	if err != nil {
		t.Fatal(err)
	}
	forms := ModelForms()
	if len(cr.Scoreboard) != len(forms) {
		t.Fatalf("scoreboard has %d rows for %d registered forms", len(cr.Scoreboard), len(forms))
	}
	rows := make(map[string]FormScore, len(cr.Scoreboard))
	selected := 0
	for _, row := range cr.Scoreboard {
		rows[row.Form] = row
		if row.Selected {
			selected++
			if row.Form != cr.Form {
				t.Errorf("selected row %q disagrees with result form %q", row.Form, cr.Form)
			}
		}
	}
	for _, f := range forms {
		if _, ok := rows[f.Name]; !ok {
			t.Errorf("registered form %q missing from the scoreboard", f.Name)
		}
	}
	if selected != 1 {
		t.Errorf("%d scoreboard rows selected, want exactly 1", selected)
	}
	if len(cr.Coeffs) == 0 {
		t.Error("auto-selected result carries no coefficients")
	}

	// Every form is reachable by explicit name, and keeps its identity
	// on the result.
	for _, f := range forms {
		one, err := s.Calibrate(ctx, ds, CalibrateOptions{Form: f.Name})
		if err != nil {
			t.Errorf("form %q: %v", f.Name, err)
			continue
		}
		if one.Form != f.Name {
			t.Errorf("requested form %q, got %q", f.Name, one.Form)
		}
		if len(one.Coeffs) != f.Coeffs {
			t.Errorf("form %q reports %d coefficients, want %d", f.Name, len(one.Coeffs), f.Coeffs)
		}
		if one.Scoreboard != nil {
			t.Errorf("explicit form %q grew a scoreboard", f.Name)
		}
	}

	if _, err := s.Calibrate(ctx, ds, CalibrateOptions{Form: "cubic-spline"}); !errors.Is(err, ErrCalibration) {
		t.Errorf("unknown form error: %v", err)
	}
}

// TestCalibrateAutoGolden pins the full auto-mode JSON result — the
// scoreboard the CLI emits under `krak calibrate -model auto --json` —
// against a golden file, reusing the -update flag.
func TestCalibrateAutoGolden(t *testing.T) {
	src := []byte(`dataset golden
obs small 2 0.052
obs small 4 0.031
obs small 8 0.021
obs small 16 0.015
obs figure2 8 0.08
obs figure2 16 0.05
`)
	ds, err := ParseDataset(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(WithQuick())
	if err != nil {
		t.Fatal(err)
	}
	cr, err := calibSession(t, m, GeneralHomogeneous).Calibrate(context.Background(), ds, CalibrateOptions{Form: FormAuto, Folds: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(cr, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	// Coverage guard independent of the stored bytes: the golden must
	// mention every registered form so a form added to the zoo without
	// regenerating the golden fails loudly.
	for _, f := range ModelForms() {
		if !strings.Contains(string(got), `"form": "`+f.Name+`"`) {
			t.Errorf("auto-mode JSON does not score form %q", f.Name)
		}
	}
	path := filepath.Join("testdata", "golden", "calibrate_auto.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("auto-mode calibration drifted from golden output.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
