package krak

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"krak/internal/engine"
	"krak/internal/textplot"
)

// SweepOp selects which Session question a sweep asks at every grid point.
type SweepOp string

// The sweep operations.
const (
	// SweepPredict evaluates each scenario's analytic model (Session.Predict).
	SweepPredict SweepOp = "predict"
	// SweepSimulate runs the cluster simulator at each point (Session.Simulate).
	SweepSimulate SweepOp = "simulate"
)

// ParseSweepOp maps a CLI spelling to a SweepOp.
func ParseSweepOp(s string) (SweepOp, error) {
	switch s {
	case "predict":
		return SweepPredict, nil
	case "simulate":
		return SweepSimulate, nil
	}
	return "", fmt.Errorf("%w: sweep op %q (predict|simulate)", ErrBadOption, s)
}

// SweepPoint is one evaluated point of a sweep grid.
type SweepPoint struct {
	// Index is the point's position in the submitted grid.
	Index int `json:"index"`

	// Deck, PEs, and Model identify the point's scenario.
	Deck  string `json:"deck"`
	PEs   int    `json:"pes"`
	Model string `json:"model,omitempty"`

	// Seconds is the wall-clock time spent evaluating this point.
	Seconds float64 `json:"seconds"`

	// Result is the point's full answer.
	Result *Result `json:"result"`
}

// SweepResult is the outcome of a Session.Sweep: every grid point's Result
// in submission order plus the sweep's aggregate timing. WorkSeconds over
// WallSeconds is the realized parallel speedup.
type SweepResult struct {
	Op          SweepOp      `json:"op"`
	Network     string       `json:"network"`
	Parallelism int          `json:"parallelism"`
	Points      []SweepPoint `json:"points"`

	// WallSeconds is the elapsed time of the whole sweep. WorkSeconds is
	// the sum of every point's evaluation wall time — an upper bound on
	// the serial cost: when parallel points block on the same in-flight
	// cache fill (a shared deck or calibration), each counts its wait,
	// which a serial run would pay only once.
	WallSeconds float64 `json:"wall_s"`
	WorkSeconds float64 `json:"work_s"`
}

// Speedup reports WorkSeconds/WallSeconds — the aggregate point time the
// sweep compressed into its wall time. Because WorkSeconds can
// double-count waits on shared artifacts (see WorkSeconds), this is an
// optimistic estimate of the true serial-vs-parallel ratio; benchmark
// serial against parallel runs (BenchmarkSweepSerial /
// BenchmarkSweepParallel) for the exact figure.
func (sr *SweepResult) Speedup() float64 {
	if sr.WallSeconds == 0 {
		return 0
	}
	return sr.WorkSeconds / sr.WallSeconds
}

// SweepSchema identifies the JSON layout SweepResult marshals to.
const SweepSchema = "krak.sweep/v1"

// MarshalJSON renders the sweep for machine consumption, stamping the
// schema identifier alongside the fields.
func (sr *SweepResult) MarshalJSON() ([]byte, error) {
	type alias SweepResult
	b, err := json.Marshal(struct {
		Schema string `json:"schema"`
		*alias
	}{Schema: SweepSchema, alias: (*alias)(sr)})
	if err != nil {
		return nil, fmt.Errorf("%w: encoding sweep: %w", ErrSchema, err)
	}
	return b, nil
}

// Render formats the sweep as a summary table for a terminal.
func (sr *SweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sweep %s over %d points on network %s (parallelism %d)\n\n",
		sr.Op, len(sr.Points), sr.Network, sr.Parallelism)
	header := []string{"#", "Deck", "PEs", "Model", "Total (ms)", "Compute (ms)", "Comm (ms)"}
	var rows [][]string
	for _, pt := range sr.Points {
		model := pt.Model
		if model == "" {
			model = "-"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", pt.Index),
			pt.Deck,
			fmt.Sprintf("%d", pt.PEs),
			model,
			fmt.Sprintf("%.1f", pt.Result.TotalSeconds*1e3),
			fmt.Sprintf("%.1f", pt.Result.ComputeSeconds*1e3),
			fmt.Sprintf("%.1f", pt.Result.CommSeconds*1e3),
		})
	}
	b.WriteString(textplot.Table(header, rows))
	fmt.Fprintf(&b, "\nSweep wall time %.2f s for %.2f s of point work (%.1fx speedup)\n",
		sr.WallSeconds, sr.WorkSeconds, sr.Speedup())
	return b.String()
}

// Sweep evaluates op at every scenario of the grid concurrently on the
// machine's worker pool (WithParallelism; GOMAXPROCS by default) and
// returns a SweepResult with the per-point Results in grid order plus the
// sweep's aggregate timing. An empty grid evaluates the session's own
// scenario as a single point.
//
// The grid points share the machine's memoized decks, partitions, and
// calibrations through single-flight caches, so each artifact is built
// once no matter how many points need it or how wide the pool is; every
// point's Result is byte-identical to what a standalone Session would
// produce. The first failing point (in grid order) aborts the sweep, as
// does cancelling ctx; either way the unstarted points are skipped, while
// points already executing run to completion (the underlying model and
// simulator calls are not interruptible).
func (s *Session) Sweep(ctx context.Context, op SweepOp, grid []*Scenario) (*SweepResult, error) {
	switch op {
	case SweepPredict, SweepSimulate:
	default:
		return nil, fmt.Errorf("%w: sweep op %q", ErrBadOption, op)
	}
	if len(grid) == 0 {
		grid = []*Scenario{s.sc}
	}
	for i, sc := range grid {
		if sc == nil {
			return nil, fmt.Errorf("%w: nil scenario at grid index %d", ErrBadOption, i)
		}
	}

	start := time.Now()
	points, err := engine.Map(ctx, s.m.pool, len(grid), func(_ context.Context, i int) (SweepPoint, error) {
		sc := grid[i]
		sub := &Session{m: s.m, sc: sc}
		t0 := time.Now()
		var res *Result
		var err error
		switch op {
		case SweepPredict:
			res, err = sub.Predict()
		case SweepSimulate:
			res, err = sub.Simulate()
		}
		if err != nil {
			return SweepPoint{}, fmt.Errorf("krak: sweep point %d (deck %s, %d PEs): %w",
				i, sc.Deck(), sc.PE(), err)
		}
		pt := SweepPoint{
			Index:   i,
			Deck:    sc.Deck(),
			PEs:     sc.PE(),
			Seconds: time.Since(t0).Seconds(),
			Result:  res,
		}
		if op == SweepPredict {
			pt.Model = sc.ModelChoice().String()
		}
		return pt, nil
	})
	if err != nil {
		return nil, modelErr("sweep", err)
	}

	sr := &SweepResult{
		Op:          op,
		Network:     s.m.NetworkName(),
		Parallelism: s.m.Parallelism(),
		Points:      points,
		WallSeconds: time.Since(start).Seconds(),
	}
	for _, pt := range points {
		sr.WorkSeconds += pt.Seconds
	}
	return sr, nil
}
