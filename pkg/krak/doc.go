// Package krak is the public façade of the Krak performance-model
// reproduction — the only supported entry point into the library. It wraps
// the analytic model, the discrete-event cluster simulator, the
// hydrodynamics mini-app, the experiment registry, and the concurrent
// sweep engine behind three concepts:
//
//   - A Machine describes the platform: the interconnect (QsNet-I by
//     default, the paper's validation network), the ground-truth
//     computation cost tables, the partitioner seed, how many iterations
//     are averaged per measurement, and how many concurrent jobs its
//     worker pool runs (WithParallelism; as wide as the hardware by
//     default). QsNetCluster returns the paper's AlphaServer ES45 /
//     QsNet-I cluster; GigECluster and InfinibandCluster are the what-if
//     presets. Arbitrary platforms come from declarative machine files
//     (LoadMachine / ParseMachineFile: custom piecewise networks via
//     WithNetworkSpec, compute rates via WithComputeScale) or from
//     calibration (below). A Machine memoizes decks, partitions, and
//     calibrations in single-flight caches, so concurrent work shares
//     artifacts instead of recomputing them — reuse one Machine whenever
//     the platform is the same.
//
//   - A Scenario describes the workload: which input deck, how many
//     processors, which model variant, which partitioner, built with
//     functional options such as WithDeck("medium"), WithPE(128), and
//     WithModel(MeshSpecific).
//
//   - A Session binds the two and answers questions: Predict evaluates the
//     analytic model, Simulate runs the cluster simulator ("measures"),
//     RunHydro executes the actual mini-app, Partition reports partition
//     quality, Experiment regenerates a paper table or figure,
//     Experiments regenerates a batch of them concurrently on the
//     machine's pool, and Calibrate fits machine parameters (compute
//     scale, latency, bandwidth, fixed overhead) to a timing Dataset —
//     measured elsewhere or self-generated with SynthesizeDataset —
//     returning a CalibrationResult whose Fitted MachineSpec feeds
//     straight back into NewMachine. CalibrateOptions selects the
//     timing-model form (FormAuto cross-validates the zoo ModelForms
//     lists and reports a selection Scoreboard), and CalibrateAppend
//     folds fresh measurements into a stored dataset with a drift
//     check (DriftReport) against the base fit's error band.
//
// Session methods return a unified *Result carrying typed per-phase
// breakdowns, partition or hydro diagnostics, and both human-readable
// (Render) and machine-readable (MarshalJSON) output.
//
// A minimal end-to-end use:
//
//	m := krak.QsNetCluster()
//	sc, err := krak.NewScenario(krak.WithDeck("medium"), krak.WithPE(128))
//	if err != nil { ... }
//	s, err := krak.NewSession(m, sc)
//	if err != nil { ... }
//	res, err := s.Predict()
//	if err != nil { ... }
//	fmt.Print(res.Render())
//
// # Sweeps
//
// The paper's evaluation is sweep-shaped — every table and figure walks a
// grid of (deck, processor-count) points — and Session.Sweep is the
// batch-evaluation path for that shape: it evaluates a grid of Scenarios
// concurrently on the machine's worker pool and returns a SweepResult
// with every point's Result in grid order plus aggregate timing
// (WallSeconds vs WorkSeconds, whose ratio is the realized speedup).
// Points share the machine's memoized artifacts through single-flight
// caches, so each deck, partition, and calibration is built exactly once
// per machine no matter how wide the pool is, and every point's output is
// byte-identical to a standalone serial run — parallelism changes only
// the wall clock. See ExampleSession_Sweep for a runnable grid
// evaluation.
//
// # Serving
//
// `krak serve` exposes Predict, Simulate, Sweep, Calibrate, and the
// experiment registry as a long-running HTTP service. This package
// carries the service's wire types so clients and server share one
// schema: PredictRequest, SimulateRequest, SweepRequest,
// CalibrateRequest, AppendRequest, and RegisterMachineRequest are the
// POST bodies (each with Normalized defaults and a
// Scenario/Grid/Materialize/Fresh constructor), MachineSpec selects the
// platform (preset, custom network, compute scale, or an embedded
// machine file; Fingerprint is its content identity), and
// Result/SweepResult/CalibrationResult/MachineHistory round-trip
// through MarshalJSON/UnmarshalJSON with a schema stamp (ResultSchema,
// SweepSchema, CalibrationSchema, MachineHistorySchema) that
// UnmarshalJSON enforces via ErrSchema. A /v1/predict response is
// byte-identical to `krak predict --json` for the same scenario,
// /v1/calibrate to `krak calibrate --json`, and /v1/calibrate/append to
// `krak calibrate -append --json`; GET /v1/machines/{fingerprint}
// serves a registered machine's calibration history byte-identically
// across server restarts. See docs/ARCHITECTURE.md's Serving and
// Calibration sections for the endpoint table and data flows.
//
// The canonical request keys the serving tier caches by are exposed as
// PredictRequest.CanonicalKey and SimulateRequest.CanonicalKey, and
// `krak gateway` consistent-hashes the same keys to route a
// multi-replica fleet with warm caches; ErrUnavailable is the typed
// refusal (HTTP 503 + Retry-After on the wire) both the server and the
// gateway return when a request cannot be placed right now — shed it
// or retry later. docs/ARCHITECTURE.md's Resilience section covers the
// gateway's retry/breaker/degradation design and the deterministic
// fault-injection layer behind its chaos suite.
//
// Everything under internal/ is unstable implementation detail; new code
// should depend only on this package. docs/ARCHITECTURE.md maps the
// internal packages; docs/MODEL.md maps the paper's model terms to them.
package krak
