// Package krak is the public façade of the Krak performance-model
// reproduction — the only supported entry point into the library. It wraps
// the analytic model, the discrete-event cluster simulator, the
// hydrodynamics mini-app, and the experiment registry behind three
// concepts:
//
//   - A Machine describes the platform: the interconnect (QsNet-I by
//     default, the paper's validation network), the ground-truth
//     computation cost tables, the partitioner seed, and how many
//     iterations are averaged per measurement. QsNetCluster returns the
//     paper's AlphaServer ES45 / QsNet-I cluster; GigECluster and
//     InfinibandCluster are the what-if presets.
//
//   - A Scenario describes the workload: which input deck, how many
//     processors, which model variant, which partitioner, built with
//     functional options such as WithDeck("medium"), WithPE(128), and
//     WithModel(MeshSpecific).
//
//   - A Session binds the two and answers questions: Predict evaluates the
//     analytic model, Simulate runs the cluster simulator ("measures"),
//     RunHydro executes the actual mini-app, Partition reports partition
//     quality, and Experiment regenerates a paper table or figure.
//
// Every Session method returns a unified *Result carrying typed per-phase
// breakdowns, partition or hydro diagnostics, and both human-readable
// (Render) and machine-readable (MarshalJSON) output.
//
// A minimal end-to-end use:
//
//	m := krak.QsNetCluster()
//	sc, err := krak.NewScenario(krak.WithDeck("medium"), krak.WithPE(128))
//	if err != nil { ... }
//	s, err := krak.NewSession(m, sc)
//	if err != nil { ... }
//	res, err := s.Predict()
//	if err != nil { ... }
//	fmt.Print(res.Render())
//
// Everything under internal/ is unstable implementation detail; new code
// should depend only on this package.
package krak
