package krak

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"krak/internal/netmodel"
)

// This file defines the declarative machine format: a bounded,
// line-oriented textual spec (in the mold of the deck format behind
// -deck-file) that describes an arbitrary cluster — interconnect
// preset or custom piecewise network, compute rate relative to the
// baseline, partitioner seed, repeat count — and parses into a
// MachineSpec. It is how `krak calibrate` hands a fitted machine back
// to the user, and how every subcommand's -machine-file flag and the
// wire MachineSpec.File field load one.

// MaxMachineFileBytes bounds the textual input ParseMachineFile accepts.
const MaxMachineFileBytes = 1 << 20

// MaxNetworkSegments bounds how many piecewise segments a custom network
// may declare.
const MaxNetworkSegments = 64

// maxMachineToken bounds any single name token in a machine file.
const maxMachineToken = 64

// SegmentSpec is one piecewise segment of a custom interconnect, in the
// human units machine files use: the segment applies to messages of at
// least MinBytes, with start-up latency LatencyUS microseconds and
// sustained bandwidth BandwidthMBs MB/s (0 = no per-byte cost).
type SegmentSpec struct {
	MinBytes     int     `json:"min_bytes"`
	LatencyUS    float64 `json:"latency_us"`
	BandwidthMBs float64 `json:"bandwidth_mbs"`
}

// NetworkSpec is a custom piecewise-linear interconnect: the declarative
// form of a netmodel.Model, usable in machine files and wire requests in
// place of an interconnect preset.
type NetworkSpec struct {
	Name     string        `json:"name,omitempty"`
	Segments []SegmentSpec `json:"segments"`
}

// Model validates the spec and builds the network model it describes.
func (ns NetworkSpec) Model() (*netmodel.Model, error) {
	if len(ns.Segments) == 0 {
		return nil, fmt.Errorf("%w: custom network has no segments", ErrBadMachineSpec)
	}
	if len(ns.Segments) > MaxNetworkSegments {
		return nil, fmt.Errorf("%w: custom network has %d segments, max %d",
			ErrBadMachineSpec, len(ns.Segments), MaxNetworkSegments)
	}
	name := ns.Name
	if name == "" {
		name = "custom"
	}
	segs := make([]netmodel.Segment, 0, len(ns.Segments))
	for i, s := range ns.Segments {
		if err := s.validate(i); err != nil {
			return nil, err
		}
		seg := netmodel.Segment{MinBytes: s.MinBytes, Latency: s.LatencyUS * 1e-6}
		if s.BandwidthMBs > 0 {
			seg.PerByte = 1 / (s.BandwidthMBs * 1e6)
		}
		segs = append(segs, seg)
	}
	net, err := netmodel.New(name, segs)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMachineSpec, err)
	}
	return net, nil
}

// validate checks one segment's ranges; i is the segment's index, folded
// into the sentinel-wrapped message so callers can forward the error
// as-is.
func (s SegmentSpec) validate(i int) error {
	if s.MinBytes < 0 || s.MinBytes > 1<<30 {
		return fmt.Errorf("%w: segment %d: min bytes %d out of range [0, 2^30]", ErrBadMachineSpec, i, s.MinBytes)
	}
	if math.IsNaN(s.LatencyUS) || s.LatencyUS < 0 || s.LatencyUS > 1e9 {
		return fmt.Errorf("%w: segment %d: latency %gus out of range [0, 1e9]", ErrBadMachineSpec, i, s.LatencyUS)
	}
	if math.IsNaN(s.BandwidthMBs) || s.BandwidthMBs < 0 || s.BandwidthMBs > 1e9 {
		return fmt.Errorf("%w: segment %d: bandwidth %g MB/s out of range [0, 1e9]", ErrBadMachineSpec, i, s.BandwidthMBs)
	}
	return nil
}

// TopologySpec is the declarative form of a netmodel.Topology: the
// physical interconnect shape refining the collective models, usable in
// machine files (the topology directive) and wire requests. The zero
// value, a nil pointer, and kind "flat" all mean the paper's flat
// collectives.
type TopologySpec struct {
	// Kind is "fat-tree", "dragonfly", or "torus" ("" or "flat" = the
	// paper's flat model).
	Kind string `json:"kind"`

	// HopLatencyUS is the extra start-up cost of each switch hop beyond
	// the first, in microseconds.
	HopLatencyUS float64 `json:"hop_latency_us,omitempty"`

	// Radix is the fat-tree switch port count.
	Radix int `json:"radix,omitempty"`

	// GroupSize is the dragonfly group width in nodes.
	GroupSize int `json:"group_size,omitempty"`

	// Dims are the torus dimensions: empty (or all zero) derives a
	// near-cubic box from the PE count, otherwise exactly three entries.
	Dims []int `json:"dims,omitempty"`
}

// Topology validates the spec and builds the netmodel topology it
// describes. Defects are reported wrapping ErrBadMachineSpec.
func (ts TopologySpec) Topology() (netmodel.Topology, error) {
	var t netmodel.Topology
	switch ts.Kind {
	case "", "flat":
		// The zero topology; an explicit hop latency is still validated.
		t.HopLatency = ts.HopLatencyUS * 1e-6
	case "fat-tree":
		t = netmodel.FatTree(ts.Radix, ts.HopLatencyUS*1e-6)
	case "dragonfly":
		t = netmodel.Dragonfly(ts.GroupSize, ts.HopLatencyUS*1e-6)
	case "torus":
		switch len(ts.Dims) {
		case 0:
			t = netmodel.Torus3D(0, 0, 0, ts.HopLatencyUS*1e-6)
		case 3:
			t = netmodel.Torus3D(ts.Dims[0], ts.Dims[1], ts.Dims[2], ts.HopLatencyUS*1e-6)
		default:
			return t, fmt.Errorf("%w: topology torus wants 0 or 3 dims, got %d", ErrBadMachineSpec, len(ts.Dims))
		}
	default:
		return t, fmt.Errorf("%w: unknown topology kind %q (fat-tree|dragonfly|torus)", ErrBadMachineSpec, ts.Kind)
	}
	if err := t.Validate(); err != nil {
		return netmodel.Topology{}, fmt.Errorf("%w: %v", ErrBadMachineSpec, err)
	}
	return t, nil
}

// normalized returns the canonical pointer form: nil for the flat
// topology, all-zero torus dims collapsed to none — so two spellings of
// the same shape share a Fingerprint.
func (ts TopologySpec) normalized() *TopologySpec {
	if ts.Kind == "" || ts.Kind == "flat" {
		return nil
	}
	if ts.Kind == "torus" && len(ts.Dims) == 3 &&
		ts.Dims[0] == 0 && ts.Dims[1] == 0 && ts.Dims[2] == 0 {
		ts.Dims = nil
	}
	return &ts
}

// ParseMachineFile parses the textual machine format into a MachineSpec.
// The format is line-oriented; '#' starts a comment and blank lines are
// ignored. Directives:
//
//	machine NAME                      optional display name
//	interconnect qsnet|gige|infiniband  preset network (default qsnet)
//	network NAME                      begin a custom network instead
//	segment MINBYTES LATENCY_US BW_MBS  one piecewise segment (after network)
//	topology fat-tree HOPLAT_US RADIX   physical topology refining the
//	topology dragonfly HOPLAT_US GROUPSIZE  collective models (default
//	topology torus HOPLAT_US [X Y Z]    flat, the paper's model)
//	compute-scale F                   compute cost multiplier vs the
//	                                  baseline ES45 tables (default 1)
//	seed N                            partitioner seed
//	repeats N                         measurement repeat count
//	quick                             scaled-down decks and calibrations
//	serialize-sends                   disable message overlap
//
// interconnect and network are mutually exclusive. ParseMachineFile never
// panics on malformed input: every defect is reported as an error
// wrapping ErrBadMachineSpec, and input size, token lengths, segment
// counts, and numeric ranges are capped.
func ParseMachineFile(src []byte) (MachineSpec, error) {
	var ms MachineSpec
	if len(src) > MaxMachineFileBytes {
		return ms, fmt.Errorf("%w: machine file is %d bytes, max %d",
			ErrBadMachineSpec, len(src), MaxMachineFileBytes)
	}
	p := machineParser{}
	for i, raw := range strings.Split(string(src), "\n") {
		line := raw
		if j := strings.IndexByte(line, '#'); j >= 0 {
			line = line[:j]
		}
		line = strings.TrimSpace(strings.TrimSuffix(line, "\r"))
		if line == "" {
			continue
		}
		if err := p.directive(i+1, strings.Fields(line)); err != nil {
			return ms, err
		}
	}
	return p.finish()
}

// machineParser accumulates machine-file directives.
type machineParser struct {
	ms              MachineSpec
	hasInterconnect bool
	network         *NetworkSpec
}

func lineErr(lineNo int, format string, args ...any) error {
	return fmt.Errorf("%w: line %d: %s", ErrBadMachineSpec, lineNo, fmt.Sprintf(format, args...))
}

func (p *machineParser) directive(lineNo int, fields []string) error {
	switch fields[0] {
	case "machine":
		if len(fields) != 2 {
			return lineErr(lineNo, "want \"machine NAME\"")
		}
		if len(fields[1]) > maxMachineToken {
			return lineErr(lineNo, "machine name exceeds %d bytes", maxMachineToken)
		}
		p.ms.Name = fields[1]
	case "interconnect":
		if len(fields) != 2 {
			return lineErr(lineNo, "want \"interconnect NAME\"")
		}
		if p.network != nil {
			return lineErr(lineNo, "interconnect and network are mutually exclusive")
		}
		if _, err := interconnectByName(fields[1]); err != nil {
			return lineErr(lineNo, "unknown interconnect %q (qsnet|gige|infiniband)", fields[1])
		}
		p.ms.Interconnect = fields[1]
		p.hasInterconnect = true
	case "network":
		if len(fields) != 2 {
			return lineErr(lineNo, "want \"network NAME\"")
		}
		if p.hasInterconnect {
			return lineErr(lineNo, "interconnect and network are mutually exclusive")
		}
		if p.network != nil {
			return lineErr(lineNo, "duplicate network directive")
		}
		if len(fields[1]) > maxMachineToken {
			return lineErr(lineNo, "network name exceeds %d bytes", maxMachineToken)
		}
		p.network = &NetworkSpec{Name: fields[1]}
	case "segment":
		if p.network == nil {
			return lineErr(lineNo, "segment requires a preceding network directive")
		}
		if len(fields) != 4 {
			return lineErr(lineNo, "want \"segment MINBYTES LATENCY_US BANDWIDTH_MBS\"")
		}
		if len(p.network.Segments) >= MaxNetworkSegments {
			return lineErr(lineNo, "more than %d segments", MaxNetworkSegments)
		}
		minBytes, err := strconv.Atoi(fields[1])
		if err != nil {
			return lineErr(lineNo, "min bytes %q must be an integer", fields[1])
		}
		lat, err1 := strconv.ParseFloat(fields[2], 64)
		bw, err2 := strconv.ParseFloat(fields[3], 64)
		if err1 != nil || err2 != nil {
			return lineErr(lineNo, "latency and bandwidth must be numbers")
		}
		seg := SegmentSpec{MinBytes: minBytes, LatencyUS: lat, BandwidthMBs: bw}
		if err := seg.validate(len(p.network.Segments)); err != nil {
			return fmt.Errorf("%w (line %d)", err, lineNo)
		}
		p.network.Segments = append(p.network.Segments, seg)
	case "topology":
		if p.ms.Topology != nil {
			return lineErr(lineNo, "duplicate topology directive")
		}
		if len(fields) < 3 {
			return lineErr(lineNo, "want \"topology fat-tree HOPLAT_US RADIX\", \"topology dragonfly HOPLAT_US GROUPSIZE\", or \"topology torus HOPLAT_US [X Y Z]\"")
		}
		hop, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return lineErr(lineNo, "hop latency %q must be a number (microseconds)", fields[2])
		}
		ts := &TopologySpec{Kind: fields[1], HopLatencyUS: hop}
		switch fields[1] {
		case "fat-tree", "dragonfly":
			if len(fields) != 4 {
				return lineErr(lineNo, "want \"topology %s HOPLAT_US %s\"", fields[1],
					map[string]string{"fat-tree": "RADIX", "dragonfly": "GROUPSIZE"}[fields[1]])
			}
			n, err := strconv.Atoi(fields[3])
			if err != nil {
				return lineErr(lineNo, "topology %s parameter %q must be an integer", fields[1], fields[3])
			}
			if fields[1] == "fat-tree" {
				ts.Radix = n
			} else {
				ts.GroupSize = n
			}
		case "torus":
			if len(fields) != 3 && len(fields) != 6 {
				return lineErr(lineNo, "want \"topology torus HOPLAT_US\" or \"topology torus HOPLAT_US X Y Z\"")
			}
			for _, f := range fields[3:] {
				d, err := strconv.Atoi(f)
				if err != nil {
					return lineErr(lineNo, "torus dim %q must be an integer", f)
				}
				ts.Dims = append(ts.Dims, d)
			}
		default:
			return lineErr(lineNo, "unknown topology %q (fat-tree|dragonfly|torus)", fields[1])
		}
		if _, err := ts.Topology(); err != nil {
			return fmt.Errorf("%w (line %d)", err, lineNo)
		}
		p.ms.Topology = ts
	case "compute-scale":
		if len(fields) != 2 {
			return lineErr(lineNo, "want \"compute-scale F\"")
		}
		f, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || math.IsNaN(f) || f <= 0 || f > 1e6 {
			return lineErr(lineNo, "compute scale %q must be in (0, 1e6]", fields[1])
		}
		p.ms.ComputeScale = f
	case "seed":
		if len(fields) != 2 {
			return lineErr(lineNo, "want \"seed N\"")
		}
		n, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return lineErr(lineNo, "seed %q must be an unsigned integer", fields[1])
		}
		p.ms.Seed = n
	case "repeats":
		if len(fields) != 2 {
			return lineErr(lineNo, "want \"repeats N\"")
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n <= 0 || n > 1e6 {
			return lineErr(lineNo, "repeats %q must be in [1, 1e6]", fields[1])
		}
		p.ms.Repeats = n
	case "quick":
		if len(fields) != 1 {
			return lineErr(lineNo, "quick takes no arguments")
		}
		p.ms.Quick = true
	case "serialize-sends":
		if len(fields) != 1 {
			return lineErr(lineNo, "serialize-sends takes no arguments")
		}
		p.ms.SerializeSends = true
	default:
		return lineErr(lineNo, "unknown directive %q", fields[0])
	}
	return nil
}

func (p *machineParser) finish() (MachineSpec, error) {
	if p.network != nil {
		// Validate the assembled network now, so a parse that succeeds
		// always yields a buildable machine.
		if _, err := p.network.Model(); err != nil {
			return MachineSpec{}, err
		}
		p.ms.Network = p.network
	}
	return p.ms, nil
}

// FormatMachineFile renders a spec back into the textual machine format,
// normalized; Format-then-Parse round-trips any spec a parse or a
// calibration produced. Names that cannot survive the line-oriented
// format (whitespace or '#') are omitted.
func FormatMachineFile(ms MachineSpec) []byte {
	ms = ms.Normalized()
	var b strings.Builder
	token := func(s string) bool {
		return s != "" && len(s) <= maxMachineToken && !strings.ContainsAny(s, " \t\r\n#")
	}
	if token(ms.Name) {
		fmt.Fprintf(&b, "machine %s\n", ms.Name)
	}
	if ms.Network != nil {
		name := ms.Network.Name
		if !token(name) {
			name = "custom"
		}
		fmt.Fprintf(&b, "network %s\n", name)
		for _, s := range ms.Network.Segments {
			fmt.Fprintf(&b, "segment %d %s %s\n", s.MinBytes,
				strconv.FormatFloat(s.LatencyUS, 'g', -1, 64),
				strconv.FormatFloat(s.BandwidthMBs, 'g', -1, 64))
		}
	} else {
		fmt.Fprintf(&b, "interconnect %s\n", ms.Interconnect)
	}
	if ts := ms.Topology; ts != nil {
		hop := strconv.FormatFloat(ts.HopLatencyUS, 'g', -1, 64)
		switch ts.Kind {
		case "fat-tree":
			fmt.Fprintf(&b, "topology fat-tree %s %d\n", hop, ts.Radix)
		case "dragonfly":
			fmt.Fprintf(&b, "topology dragonfly %s %d\n", hop, ts.GroupSize)
		case "torus":
			if len(ts.Dims) == 3 {
				fmt.Fprintf(&b, "topology torus %s %d %d %d\n", hop, ts.Dims[0], ts.Dims[1], ts.Dims[2])
			} else {
				fmt.Fprintf(&b, "topology torus %s\n", hop)
			}
		}
	}
	if ms.ComputeScale != 1 {
		fmt.Fprintf(&b, "compute-scale %s\n", strconv.FormatFloat(ms.ComputeScale, 'g', -1, 64))
	}
	fmt.Fprintf(&b, "seed %d\n", ms.Seed)
	if ms.Repeats != 0 {
		fmt.Fprintf(&b, "repeats %d\n", ms.Repeats)
	}
	if ms.Quick {
		b.WriteString("quick\n")
	}
	if ms.SerializeSends {
		b.WriteString("serialize-sends\n")
	}
	return []byte(b.String())
}

// LoadMachine parses src as the textual machine format and builds the
// Machine it describes — the library-level counterpart of passing
// -machine-file to a subcommand. Extra options (WithParallelism, an
// overriding WithSeed, ...) are applied after the file's own directives.
func LoadMachine(src []byte, extra ...MachineOption) (*Machine, error) {
	ms, err := ParseMachineFile(src)
	if err != nil {
		return nil, err
	}
	return NewMachine(append(ms.Options(), extra...)...)
}
