package krak

import (
	"context"
	"errors"
	"io"
	"math"
	"testing"
)

// TestTypedErrors is the façade's error contract: every typed sentinel
// must come back, errors.Is-matchable, from the API paths documented to
// return it.
func TestTypedErrors(t *testing.T) {
	cases := []struct {
		name string
		do   func() error
		want error
	}{
		{"unknown deck", func() error {
			_, err := NewScenario(WithDeck("doom"))
			return err
		}, ErrUnknownDeck},
		{"bad pe zero", func() error {
			_, err := NewScenario(WithPE(0))
			return err
		}, ErrBadPE},
		{"bad pe negative", func() error {
			_, err := NewScenario(WithPE(-8))
			return err
		}, ErrBadPE},
		{"bad calibration pe", func() error {
			_, err := NewScenario(WithCalibrationPEs(2, -4))
			return err
		}, ErrBadPE},
		{"unknown model option", func() error {
			_, err := NewScenario(WithModel(Model(99)))
			return err
		}, ErrUnknownModel},
		{"unknown model spelling", func() error {
			_, err := ParseModel("clairvoyant")
			return err
		}, ErrUnknownModel},
		{"unknown partitioner", func() error {
			_, err := NewScenario(WithPartitioner("guesswork"))
			return err
		}, ErrUnknownPartitioner},
		{"unknown interconnect", func() error {
			_, err := NewMachine(WithInterconnect("tin-cans"))
			return err
		}, ErrUnknownInterconnect},
		{"unknown interconnect via spec", func() error {
			_, err := NewMachine(MachineSpec{Interconnect: "tin-cans"}.Options()...)
			return err
		}, ErrUnknownInterconnect},
		{"unknown experiment", func() error {
			s := mustQuickSession(t)
			_, err := s.Experiment("table99")
			return err
		}, ErrUnknownExperiment},
		{"unknown experiment in batch", func() error {
			s := mustQuickSession(t)
			_, err := s.Experiments(context.Background(), []string{"table1", "table99"})
			return err
		}, ErrUnknownExperiment},
		{"bad iterations", func() error {
			_, err := NewScenario(WithIterations(0))
			return err
		}, ErrBadOption},
		{"bad steps", func() error {
			_, err := NewScenario(WithSteps(-1))
			return err
		}, ErrBadOption},
		{"bad ranks", func() error {
			_, err := NewScenario(WithRanks(0))
			return err
		}, ErrBadOption},
		{"bad deck dims", func() error {
			_, err := NewScenario(WithDeckDims(0, 10))
			return err
		}, ErrBadOption},
		{"bad progress interval", func() error {
			_, err := NewScenario(WithHydroProgress(0, func(HydroTick) {}))
			return err
		}, ErrBadOption},
		{"bad repeats", func() error {
			_, err := NewMachine(WithRepeats(0))
			return err
		}, ErrBadOption},
		{"bad parallelism", func() error {
			_, err := NewMachine(WithParallelism(-2))
			return err
		}, ErrBadOption},
		{"nil machine session", func() error {
			_, err := NewSession(nil, &Scenario{})
			return err
		}, ErrBadOption},
		{"nil scenario session", func() error {
			m, err := NewMachine(WithQuick())
			if err != nil {
				return err
			}
			_, err = NewSession(m, nil)
			return err
		}, ErrBadOption},
		{"bad sweep op", func() error {
			_, err := ParseSweepOp("meditate")
			return err
		}, ErrBadOption},
		{"oversized sweep request", func() error {
			pes := make([]int, MaxSweepPoints+1)
			for i := range pes {
				pes[i] = i + 1
			}
			_, _, err := SweepRequest{Decks: []string{"small"}, PEs: pes}.Grid()
			return err
		}, ErrBadOption},
		{"bad deck spec", func() error {
			_, err := NewScenario(WithDeckSpec([]byte("grid nope\n")))
			return err
		}, ErrBadDeckSpec},
		{"bad machine file", func() error {
			_, err := ParseMachineFile([]byte("warp-drive on\n"))
			return err
		}, ErrBadMachineSpec},
		{"bad machine file via LoadMachine", func() error {
			_, err := LoadMachine([]byte("interconnect tokenring\n"))
			return err
		}, ErrBadMachineSpec},
		{"empty custom network", func() error {
			_, err := NewMachine(WithNetworkSpec(NetworkSpec{}))
			return err
		}, ErrBadMachineSpec},
		{"bad network segment via spec", func() error {
			ns := &NetworkSpec{Segments: []SegmentSpec{{MinBytes: 0, LatencyUS: -4}}}
			_, err := NewMachine(MachineSpec{Network: ns}.Options()...)
			return err
		}, ErrBadMachineSpec},
		{"bad embedded machine file", func() error {
			_, err := MachineSpec{File: "segment 0 1 1\n"}.Resolved()
			return err
		}, ErrBadMachineSpec},
		{"bad compute scale", func() error {
			_, err := NewMachine(WithComputeScale(0))
			return err
		}, ErrBadOption},
		{"bad dataset text", func() error {
			_, err := ParseDataset([]byte("obs small 2 minus\n"))
			return err
		}, ErrCalibration},
		{"empty calibration dataset", func() error {
			s := mustQuickSession(t)
			_, err := s.Calibrate(context.Background(), &Dataset{}, CalibrateOptions{})
			return err
		}, ErrCalibration},
		{"calibration unknown deck", func() error {
			s := mustQuickSession(t)
			ds := &Dataset{Observations: []Observation{{Deck: "mega", PEs: 2, Seconds: 1}}}
			_, err := s.Calibrate(context.Background(), ds, CalibrateOptions{})
			return err
		}, ErrCalibration},
		{"calibration bad folds", func() error {
			s := mustQuickSession(t)
			ds := &Dataset{Observations: []Observation{{Deck: "small", PEs: 2, Seconds: 1}}}
			_, err := s.Calibrate(context.Background(), ds, CalibrateOptions{Folds: 7})
			return err
		}, ErrCalibration},
		{"calibration mesh-specific session", func() error {
			m, err := NewMachine(WithQuick())
			if err != nil {
				return err
			}
			sc, err := NewScenario(WithModel(MeshSpecific))
			if err != nil {
				return err
			}
			s, err := NewSession(m, sc)
			if err != nil {
				return err
			}
			ds := &Dataset{Observations: []Observation{{Deck: "small", PEs: 2, Seconds: 1}}}
			_, err = s.Calibrate(context.Background(), ds, CalibrateOptions{})
			return err
		}, ErrCalibration},
		{"calibrate request without source", func() error {
			s := mustQuickSession(t)
			_, err := CalibrateRequest{}.Materialize(context.Background(), s)
			return err
		}, ErrCalibration},
		{"bad result schema", func() error {
			var r Result
			return r.UnmarshalJSON([]byte(`{"schema":"krak.result/v0","kind":"predict"}`))
		}, ErrSchema},
		{"bad sweep schema", func() error {
			var sr SweepResult
			return sr.UnmarshalJSON([]byte(`{"schema":"krak.sweep/v0"}`))
		}, ErrSchema},
		{"bad calibration schema", func() error {
			var cr CalibrationResult
			return cr.UnmarshalJSON([]byte(`{"schema":"krak.calibration/v0"}`))
		}, ErrSchema},
		{"undecodable result payload", func() error {
			var r Result
			return r.UnmarshalJSON([]byte(`{`))
		}, ErrSchema},
		{"undecodable sweep payload", func() error {
			var sr SweepResult
			return sr.UnmarshalJSON([]byte(`[]`))
		}, ErrSchema},
		{"undecodable calibration payload", func() error {
			var cr CalibrationResult
			return cr.UnmarshalJSON([]byte(`"nope"`))
		}, ErrSchema},
		{"unencodable result", func() error {
			_, err := (&Result{Kind: KindPredict, TotalSeconds: math.NaN()}).MarshalJSON()
			return err
		}, ErrSchema},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.do()
			if err == nil {
				t.Fatal("no error")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %q is not %q", err, tc.want)
			}
			// Every typed failure must carry the krak namespace so CLI
			// users can tell whose complaint it is.
			if msg := err.Error(); len(msg) < 5 || msg[:5] != "krak:" {
				t.Errorf("error %q does not start with \"krak:\"", msg)
			}
		})
	}
}

// TestCanceledContext covers the cancellation error path of both batch
// entry points: a pre-canceled context must surface context.Canceled,
// not a partial result.
func TestCanceledContext(t *testing.T) {
	s := mustQuickSession(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := s.Experiments(ctx, []string{"table1"}); !errors.Is(err, context.Canceled) {
		t.Errorf("Experiments error %v is not context.Canceled", err)
	} else if !errors.Is(err, ErrModel) {
		// The ErrModel wrap must not hide the cancellation, and vice versa.
		t.Errorf("Experiments error %v is not ErrModel", err)
	}

	sc, err := NewScenario(WithDeck("small"), WithPE(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sweep(ctx, SweepPredict, []*Scenario{sc}); !errors.Is(err, context.Canceled) {
		t.Errorf("Sweep error %v is not context.Canceled", err)
	} else if !errors.Is(err, ErrModel) {
		t.Errorf("Sweep error %v is not ErrModel", err)
	}
}

// TestModelErrKeepsChain pins the modelErr wrapping shape: both ErrModel
// and the original cause stay errors.Is-matchable, and the message keeps
// the krak namespace prefix the CLI contract requires.
func TestModelErrKeepsChain(t *testing.T) {
	err := modelErr("deck", io.ErrUnexpectedEOF)
	if !errors.Is(err, ErrModel) {
		t.Errorf("modelErr result %v is not ErrModel", err)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("modelErr result %v lost its cause", err)
	}
	if msg := err.Error(); len(msg) < 5 || msg[:5] != "krak:" {
		t.Errorf("modelErr message %q does not start with \"krak:\"", msg)
	}
}

// mustQuickSession is quickSession without option plumbing, for error
// tests that only need a live session.
func mustQuickSession(t *testing.T) *Session {
	t.Helper()
	return quickSession(t)
}
