package krak

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestParseMachineFile(t *testing.T) {
	src := []byte(`# a commodity what-if cluster
machine lab-gige
interconnect gige     # preset base
compute-scale 1.5
seed 7
repeats 3
quick
serialize-sends
`)
	ms, err := ParseMachineFile(src)
	if err != nil {
		t.Fatal(err)
	}
	want := MachineSpec{
		Name: "lab-gige", Interconnect: "gige", ComputeScale: 1.5,
		Seed: 7, Repeats: 3, Quick: true, SerializeSends: true,
	}
	if !reflect.DeepEqual(ms, want) {
		t.Errorf("parsed %+v, want %+v", ms, want)
	}

	m, err := LoadMachine(src)
	if err != nil {
		t.Fatal(err)
	}
	if m.Interconnect() != "gige" || m.Seed() != 7 || m.Repeats() != 3 ||
		!m.Quick() || m.ComputeScale() != 1.5 || m.Name() != "lab-gige" {
		t.Errorf("loaded machine drifted from the file: %s seed %d repeats %d quick %t scale %g name %q",
			m.Interconnect(), m.Seed(), m.Repeats(), m.Quick(), m.ComputeScale(), m.Name())
	}
}

func TestParseMachineFileCustomNetwork(t *testing.T) {
	src := []byte(`machine slownet
network myri
segment 0 9.5 120
segment 4096 15 240
`)
	ms, err := ParseMachineFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Network == nil || ms.Network.Name != "myri" || len(ms.Network.Segments) != 2 {
		t.Fatalf("network not parsed: %+v", ms.Network)
	}
	net, err := ms.Network.Model()
	if err != nil {
		t.Fatal(err)
	}
	// 9.5us latency + 100 bytes at 120 MB/s, via the same runtime float
	// ops the segment conversion performs (a constant expression would be
	// folded exactly and disagree in the last bit).
	lat, bw := 9.5, 120.0
	want := lat*1e-6 + 100*(1/(bw*1e6))
	if got := net.MsgTime(100); got != want {
		t.Errorf("MsgTime(100) = %g, want %g", got, want)
	}
	m, err := LoadMachine(src)
	if err != nil {
		t.Fatal(err)
	}
	if m.Interconnect() != "custom" || m.NetworkName() != "myri" {
		t.Errorf("custom network machine: %s / %s", m.Interconnect(), m.NetworkName())
	}
}

func TestParseMachineFileTopology(t *testing.T) {
	src := []byte(`machine ib-fattree
interconnect infiniband
topology fat-tree 0.2 36   # radix-36 switches
`)
	ms, err := ParseMachineFile(src)
	if err != nil {
		t.Fatal(err)
	}
	want := &TopologySpec{Kind: "fat-tree", HopLatencyUS: 0.2, Radix: 36}
	if !reflect.DeepEqual(ms.Topology, want) {
		t.Errorf("parsed topology %+v, want %+v", ms.Topology, want)
	}
	m, err := LoadMachine(src)
	if err != nil {
		t.Fatal(err)
	}
	if m.Topology() != "fat-tree radix 36" {
		t.Errorf("machine topology %q", m.Topology())
	}
	if flat := QsNetCluster(); flat.Topology() != "flat" {
		t.Errorf("default machine topology %q, want flat", flat.Topology())
	}

	// Topology composes with a custom network, and fixed torus dims
	// survive the trip into the machine.
	m, err = LoadMachine([]byte("network x\nsegment 0 1 1\ntopology torus 0.5 8 8 8\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Topology() != "8x8x8 torus" || m.NetworkName() != "x" {
		t.Errorf("machine: topology %q network %q", m.Topology(), m.NetworkName())
	}
}

func TestParseMachineFileErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"unknown directive", "turbo on\n", "unknown directive"},
		{"unknown interconnect", "interconnect tokenring\n", "unknown interconnect"},
		{"both networks", "interconnect gige\nnetwork x\n", "mutually exclusive"},
		{"both networks reversed", "network x\nsegment 0 1 1\ninterconnect gige\n", "mutually exclusive"},
		{"orphan segment", "segment 0 1 1\n", "preceding network"},
		{"empty network", "network x\n", "no segments"},
		{"segment arity", "network x\nsegment 0 1\n", "want \"segment"},
		{"nonzero first segment", "network x\nsegment 64 1 1\n", "must start at 0"},
		{"duplicate boundary", "network x\nsegment 0 1 1\nsegment 0 2 2\n", "duplicate segment"},
		{"negative latency", "network x\nsegment 0 -1 1\n", "latency"},
		{"huge bandwidth", "network x\nsegment 0 1 1e12\n", "bandwidth"},
		{"nan latency", "network x\nsegment 0 NaN 1\n", "latency"},
		{"bad scale", "compute-scale -2\n", "compute scale"},
		{"zero scale", "compute-scale 0\n", "compute scale"},
		{"bad seed", "seed -1\n", "seed"},
		{"bad repeats", "repeats 0\n", "repeats"},
		{"quick args", "quick please\n", "no arguments"},
		{"long name", "machine " + strings.Repeat("m", 65) + "\n", "exceeds 64 bytes"},
		{"topology arity", "topology fat-tree 0.2\n", "want \"topology fat-tree"},
		{"unknown topology", "topology hypercube 1 4\n", "unknown topology"},
		{"bad radix", "topology fat-tree 0.2 2\n", "radix"},
		{"bad group size", "topology dragonfly 0.2 1\n", "group size"},
		{"torus dims arity", "topology torus 0.2 4 4\n", "topology torus"},
		{"torus zero dim", "topology torus 0.2 4 0 4\n", "torus dims"},
		{"torus huge dim", "topology torus 0.2 4 4 5000\n", "torus dims"},
		{"duplicate topology", "topology torus 0.2\ntopology torus 0.2\n", "duplicate topology"},
		{"nan hop latency", "topology fat-tree NaN 8\n", "hop latency"},
		{"huge hop latency", "topology fat-tree 2e6 8\n", "hop latency"},
		{"bad hop latency", "topology fat-tree fast 8\n", "hop latency"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseMachineFile([]byte(tc.src))
			if err == nil {
				t.Fatal("no error")
			}
			if !errors.Is(err, ErrBadMachineSpec) {
				t.Errorf("error %q is not ErrBadMachineSpec", err)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestMachineFileRoundTrip pins Format-then-Parse as fingerprint-
// preserving, the property the fuzz harness also checks.
func TestMachineFileRoundTrip(t *testing.T) {
	specs := []MachineSpec{
		{},
		{Interconnect: "infiniband", Seed: 42, Repeats: 9, Quick: true},
		{Name: "lab", ComputeScale: 0.75, SerializeSends: true},
		{Network: &NetworkSpec{Name: "fat-tree", Segments: []SegmentSpec{
			{MinBytes: 0, LatencyUS: 1.25, BandwidthMBs: 3200},
			{MinBytes: 65536, LatencyUS: 4, BandwidthMBs: 6400},
		}}},
		{Network: &NetworkSpec{Segments: []SegmentSpec{{MinBytes: 0}}}}, // free network
		{Interconnect: "infiniband", Topology: &TopologySpec{Kind: "fat-tree", HopLatencyUS: 0.2, Radix: 36}},
		{Topology: &TopologySpec{Kind: "dragonfly", HopLatencyUS: 0.3, GroupSize: 16}},
		{Topology: &TopologySpec{Kind: "torus", HopLatencyUS: 0.5}},
		{Topology: &TopologySpec{Kind: "torus", HopLatencyUS: 0.5, Dims: []int{8, 8, 8}}},
		{Topology: &TopologySpec{Kind: "flat"}}, // normalizes away entirely
	}
	for i, ms := range specs {
		text := FormatMachineFile(ms)
		back, err := ParseMachineFile(text)
		if err != nil {
			t.Fatalf("spec %d: formatted file does not parse: %v\n%s", i, err, text)
		}
		if got, want := back.Fingerprint(), ms.Fingerprint(); got != want {
			t.Errorf("spec %d: fingerprint drifted through format/parse\n%s", i, text)
		}
	}
}

// TestMachineSpecResolved covers the embedded-File expansion and
// override rules of wire specs.
func TestMachineSpecResolved(t *testing.T) {
	file := "machine base\ninterconnect gige\nseed 3\nrepeats 4\n"

	r, err := MachineSpec{File: file}.Resolved()
	if err != nil {
		t.Fatal(err)
	}
	if r.Interconnect != "gige" || r.Seed != 3 || r.Repeats != 4 || r.Name != "base" || r.File != "" {
		t.Errorf("resolved %+v", r)
	}

	// Explicit fields override the file; an explicit interconnect also
	// clears a file network.
	r, err = MachineSpec{File: "network x\nsegment 0 5 100\n", Interconnect: "qsnet", Seed: 9}.Resolved()
	if err != nil {
		t.Fatal(err)
	}
	if r.Network != nil || r.Interconnect != "qsnet" || r.Seed != 9 {
		t.Errorf("override resolution drifted: %+v", r)
	}

	if _, err := (MachineSpec{File: "bogus\n"}).Resolved(); !errors.Is(err, ErrBadMachineSpec) {
		t.Errorf("bad file resolved: %v", err)
	}

	// No file: identity.
	ms := MachineSpec{Interconnect: "gige"}
	if r, err := ms.Resolved(); err != nil || !reflect.DeepEqual(r, ms) {
		t.Errorf("fileless spec not returned unchanged: %+v, %v", r, err)
	}
}

// TestMachineSpecFingerprint checks the identity the serving machine
// cache keys on: spelling-insensitive, content-sensitive.
func TestMachineSpecFingerprint(t *testing.T) {
	if (MachineSpec{}).Fingerprint() != (MachineSpec{Interconnect: "qsnet", Seed: 1, ComputeScale: 1}).Fingerprint() {
		t.Error("default spelling changes the fingerprint")
	}
	a := MachineSpec{Network: &NetworkSpec{Segments: []SegmentSpec{{LatencyUS: 5, BandwidthMBs: 100}}}}
	b := MachineSpec{Network: &NetworkSpec{Segments: []SegmentSpec{{LatencyUS: 6, BandwidthMBs: 100}}}}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("distinct networks share a fingerprint")
	}
	if a.Fingerprint() == (MachineSpec{}).Fingerprint() {
		t.Error("custom network shares the preset fingerprint")
	}
	// A rename is the same platform: the display name must not move the
	// fingerprint, and an ignored Interconnect alongside a custom network
	// must not either.
	if (MachineSpec{Name: "x"}).Fingerprint() != (MachineSpec{Name: "y"}).Fingerprint() {
		t.Error("display name changes the fingerprint")
	}
	withIC := a
	withIC.Interconnect = "gige"
	if withIC.Fingerprint() != a.Fingerprint() {
		t.Error("ignored interconnect alongside a custom network changes the fingerprint")
	}
	// Topology spellings: flat == absent, all-zero torus dims == derived.
	if (MachineSpec{Topology: &TopologySpec{Kind: "flat"}}).Fingerprint() != (MachineSpec{}).Fingerprint() {
		t.Error("explicit flat topology changes the fingerprint")
	}
	tz := MachineSpec{Topology: &TopologySpec{Kind: "torus", HopLatencyUS: 0.5, Dims: []int{0, 0, 0}}}
	td := MachineSpec{Topology: &TopologySpec{Kind: "torus", HopLatencyUS: 0.5}}
	if tz.Fingerprint() != td.Fingerprint() {
		t.Error("all-zero torus dims change the fingerprint vs derived dims")
	}
	ft := MachineSpec{Topology: &TopologySpec{Kind: "fat-tree", HopLatencyUS: 0.5, Radix: 36}}
	if ft.Fingerprint() == td.Fingerprint() || ft.Fingerprint() == (MachineSpec{}).Fingerprint() {
		t.Error("distinct topologies share a fingerprint")
	}
}

// TestMachineSpecOptionsWithSpecFields drives the new spec fields end to
// end through NewMachine.
func TestMachineSpecOptionsWithSpecFields(t *testing.T) {
	ms := MachineSpec{
		Network:      &NetworkSpec{Name: "probe", Segments: []SegmentSpec{{MinBytes: 0, LatencyUS: 2, BandwidthMBs: 500}}},
		ComputeScale: 2,
		Quick:        true,
	}
	m, err := NewMachine(ms.Options()...)
	if err != nil {
		t.Fatal(err)
	}
	if m.NetworkName() != "probe" || m.ComputeScale() != 2 {
		t.Errorf("machine: net %q scale %g", m.NetworkName(), m.ComputeScale())
	}

	if _, err := NewMachine(MachineSpec{Network: &NetworkSpec{}}.Options()...); !errors.Is(err, ErrBadMachineSpec) {
		t.Errorf("empty network accepted: %v", err)
	}
	if _, err := NewMachine(MachineSpec{File: "bogus\n"}.Options()...); !errors.Is(err, ErrBadMachineSpec) {
		t.Errorf("bad embedded file accepted: %v", err)
	}
	if _, err := NewMachine(WithComputeScale(-1)); !errors.Is(err, ErrBadOption) {
		t.Errorf("negative compute scale accepted: %v", err)
	}
}

// TestComputeScaleScalesSimulation asserts the semantic the calibration
// subsystem relies on: a compute-scaled machine's simulated compute
// times are exactly the scale times the baseline's.
func TestComputeScaleScalesSimulation(t *testing.T) {
	base := quickSession(t, WithDeck("small"), WithPE(4), WithIterations(1))
	bres, err := base.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(WithQuick(), WithComputeScale(3))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewScenario(WithDeck("small"), WithPE(4), WithIterations(1))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(m, sc)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := s.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	for i := range bres.Phases {
		got := sres.Phases[i].Compute
		want := 3 * bres.Phases[i].Compute
		if rel := (got - want) / want; rel > 1e-12 || rel < -1e-12 {
			t.Errorf("phase %d compute %g, want exactly 3x baseline (%g)", i+1, got, want)
		}
	}
}
