package krak

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// update rewrites the calibration golden file instead of comparing:
//
//	go test ./pkg/krak -run TestCalibrateGolden -update
var update = flag.Bool("update", false, "rewrite the golden calibration output")

// calibSession builds a quick session with the given model for
// calibration tests.
func calibSession(t *testing.T, m *Machine, model Model) *Session {
	t.Helper()
	sc, err := NewScenario(WithModel(model))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(m, sc)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCalibrateRecoversKnownMachine is the acceptance test of the
// calibration subsystem: a machine defined in a machine file (custom
// single-segment network, compute scale) generates a synthetic dataset
// through the analytic model, and calibrating that dataset against the
// baseline recovers the file's parameters within the documented
// tolerance (0.1% for model-generated data; see docs/ARCHITECTURE.md).
func TestCalibrateRecoversKnownMachine(t *testing.T) {
	const (
		wantScale = 1.7
		wantLatUS = 20.0
		wantBWMBs = 200.0
		tol       = 1e-3
	)
	machineFile := []byte(`machine lab
network lab-net
segment 0 20 200
compute-scale 1.7
quick
`)
	known, err := LoadMachine(machineFile)
	if err != nil {
		t.Fatal(err)
	}
	// Heterogeneous mode keeps the general model exactly linear in the
	// machine parameters (no worst-material max), so model-generated
	// data admits near-exact recovery.
	gen := calibSession(t, known, GeneralHeterogeneous)
	ds, err := gen.SynthesizeDataset(context.Background(), SweepPredict,
		[]string{"small", "figure2"}, []int{2, 4, 8, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Observations) != 10 {
		t.Fatalf("synth dataset has %d observations", len(ds.Observations))
	}

	base, err := NewMachine(WithQuick())
	if err != nil {
		t.Fatal(err)
	}
	cr, err := calibSession(t, base, GeneralHeterogeneous).Calibrate(context.Background(), ds, CalibrateOptions{})
	if err != nil {
		t.Fatal(err)
	}

	if rel := math.Abs(cr.Params.ComputeScale-wantScale) / wantScale; rel > tol {
		t.Errorf("compute scale %.6f, want %.6f (rel err %.2g)", cr.Params.ComputeScale, wantScale, rel)
	}
	if rel := math.Abs(cr.Params.LatencySeconds*1e6-wantLatUS) / wantLatUS; rel > tol {
		t.Errorf("latency %.6f us, want %.6f", cr.Params.LatencySeconds*1e6, wantLatUS)
	}
	wantByteSec := 1 / (wantBWMBs * 1e6)
	if rel := math.Abs(cr.Params.SecondsPerByte-wantByteSec) / wantByteSec; rel > tol {
		t.Errorf("byte cost %.3g s/B, want %.3g", cr.Params.SecondsPerByte, wantByteSec)
	}
	if math.Abs(cr.Params.FixedSeconds) > 1e-6 {
		t.Errorf("fixed overhead %.3g s, want ~0", cr.Params.FixedSeconds)
	}
	if cr.R2 < 1-1e-6 {
		t.Errorf("R² = %.9f on model-generated data", cr.R2)
	}

	// The fitted machine must round-trip: through the machine-file
	// format, and through prediction — predicting on the fitted machine
	// reproduces the known machine's times.
	fittedFile := FormatMachineFile(cr.Fitted)
	fitted, err := LoadMachine(fittedFile)
	if err != nil {
		t.Fatalf("fitted machine file does not load: %v\n%s", err, fittedFile)
	}
	fs := calibSession(t, fitted, GeneralHeterogeneous)
	refit, err := fs.SynthesizeDataset(context.Background(), SweepPredict, []string{"small"}, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	knownAt, err := gen.SynthesizeDataset(context.Background(), SweepPredict, []string{"small"}, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	got, want := refit.Observations[0].Seconds, knownAt.Observations[0].Seconds
	if rel := math.Abs(got-want) / want; rel > 5*tol {
		t.Errorf("fitted machine predicts %.6g s where the known machine predicts %.6g (rel err %.2g)",
			got, want, rel)
	}
}

// TestCalibrateOnSimulatedMeasurements calibrates against the
// discrete-event simulator's noisy, partition-aware times: the baseline
// machine should come back with a compute scale near 1 and a fit that
// cross-validates sanely.
func TestCalibrateOnSimulatedMeasurements(t *testing.T) {
	base, err := NewMachine(WithQuick())
	if err != nil {
		t.Fatal(err)
	}
	s := calibSession(t, base, GeneralHomogeneous)
	ds, err := s.SynthesizeDataset(context.Background(), SweepSimulate,
		[]string{"small", "figure2"}, []int{2, 4, 8, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	cr, err := s.Calibrate(context.Background(), ds, CalibrateOptions{Folds: 5})
	if err != nil {
		t.Fatal(err)
	}
	// The simulator differs from the general model (irregular partitions,
	// material mixtures, overlap, ±3% noise); the documented tolerance
	// for simulator-measured data is 25% on the compute scale.
	if cr.Params.ComputeScale < 0.75 || cr.Params.ComputeScale > 1.25 {
		t.Errorf("compute scale %.4f, want ~1 for the baseline machine", cr.Params.ComputeScale)
	}
	if cr.R2 < 0.9 {
		t.Errorf("R² = %.4f", cr.R2)
	}
	if cr.CV == nil || cr.CV.Folds != 5 {
		t.Fatalf("missing CV report: %+v", cr.CV)
	}
	if cr.CV.MAPE <= 0 || cr.CV.MAPE > 0.5 {
		t.Errorf("CV MAPE %.3f out of sane range", cr.CV.MAPE)
	}
	if len(cr.Points) != len(ds.Observations) {
		t.Errorf("%d points for %d observations", len(cr.Points), len(ds.Observations))
	}
}

// TestCalibrateDeterministic pins byte-identical output across repeated
// runs and across machine parallelism — the property the serving cache
// and the golden tests rely on.
func TestCalibrateDeterministic(t *testing.T) {
	ds := &Dataset{Name: "det", Observations: []Observation{
		{Deck: "small", PEs: 2, Seconds: 0.055},
		{Deck: "small", PEs: 4, Seconds: 0.034},
		{Deck: "small", PEs: 8, Seconds: 0.022},
		{Deck: "small", PEs: 16, Seconds: 0.016},
	}}
	render := func(parallel int) (string, []byte) {
		t.Helper()
		opts := []MachineOption{WithQuick()}
		if parallel > 0 {
			opts = append(opts, WithParallelism(parallel))
		}
		m, err := NewMachine(opts...)
		if err != nil {
			t.Fatal(err)
		}
		cr, err := calibSession(t, m, GeneralHomogeneous).Calibrate(context.Background(), ds, CalibrateOptions{Folds: 2})
		if err != nil {
			t.Fatal(err)
		}
		js, err := json.Marshal(cr)
		if err != nil {
			t.Fatal(err)
		}
		return cr.Render(), js
	}
	r1, j1 := render(0)
	r2, j2 := render(1)
	if r1 != r2 {
		t.Error("rendered calibration differs across parallelism")
	}
	if string(j1) != string(j2) {
		t.Error("calibration JSON differs across parallelism")
	}
}

// TestCalibrateGolden pins the rendered calibration of a fixed dataset
// on the quick baseline machine against a checked-in golden file,
// extending the PR 3 golden pattern to the calibration subsystem.
func TestCalibrateGolden(t *testing.T) {
	src := []byte(`dataset golden
obs small 2 0.052
obs small 4 0.031
obs small 8 0.021
obs small 16 0.015
obs figure2 8 0.08
obs figure2 16 0.05
`)
	ds, err := ParseDataset(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(WithQuick())
	if err != nil {
		t.Fatal(err)
	}
	cr, err := calibSession(t, m, GeneralHomogeneous).Calibrate(context.Background(), ds, CalibrateOptions{Folds: 3})
	if err != nil {
		t.Fatal(err)
	}
	got := cr.Render()
	path := filepath.Join("testdata", "golden", "calibrate.txt")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("calibration drifted from golden output.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestCalibrationResultJSON covers the schema-stamped wire round trip.
func TestCalibrationResultJSON(t *testing.T) {
	cr := &CalibrationResult{
		Dataset:      "rt",
		Observations: 3,
		Model:        "general-homo",
		Terms:        []string{"compute", "messages"},
		Params:       FitParams{ComputeScale: 1.5, LatencySeconds: 2e-5},
		R2:           0.99,
		Fitted:       MachineSpec{}.Normalized(),
	}
	raw, err := json.Marshal(cr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"schema":"`+CalibrationSchema+`"`) {
		t.Fatalf("schema stamp missing: %s", raw)
	}
	var back CalibrationResult
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Params.ComputeScale != 1.5 || back.Dataset != "rt" {
		t.Errorf("round trip drifted: %+v", back)
	}
	var bad CalibrationResult
	if err := bad.UnmarshalJSON([]byte(`{"schema":"krak.calibration/v0"}`)); !errors.Is(err, ErrSchema) {
		t.Errorf("wrong schema accepted: %v", err)
	}
}

// TestCalibrateRequestMaterialize covers the wire request's dataset
// sourcing rules.
func TestCalibrateRequestMaterialize(t *testing.T) {
	m, err := NewMachine(WithQuick())
	if err != nil {
		t.Fatal(err)
	}
	s := calibSession(t, m, GeneralHomogeneous)
	ctx := context.Background()

	// Textual dataset.
	ds, err := CalibrateRequest{Dataset: "obs small 2 0.05\n"}.Materialize(ctx, s)
	if err != nil || len(ds.Observations) != 1 {
		t.Fatalf("dataset source: %v, %+v", err, ds)
	}
	// Structured observations.
	ds, err = CalibrateRequest{Observations: []Observation{{Deck: "small", PEs: 2, Seconds: 0.1}}}.Materialize(ctx, s)
	if err != nil || len(ds.Observations) != 1 {
		t.Fatalf("observations source: %v, %+v", err, ds)
	}
	// Synth.
	ds, err = CalibrateRequest{Synth: &SynthSpec{Op: "predict", Decks: []string{"small"}, PEs: []int{2, 4}}}.Materialize(ctx, s)
	if err != nil || len(ds.Observations) != 2 {
		t.Fatalf("synth source: %v, %+v", err, ds)
	}
	// Zero and double sources.
	if _, err := (CalibrateRequest{}).Materialize(ctx, s); !errors.Is(err, ErrCalibration) {
		t.Errorf("no source: %v", err)
	}
	both := CalibrateRequest{Dataset: "obs small 2 0.05\n", Synth: &SynthSpec{}}
	if _, err := both.Materialize(ctx, s); !errors.Is(err, ErrCalibration) {
		t.Errorf("two sources: %v", err)
	}
}
