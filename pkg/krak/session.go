package krak

import (
	"context"
	"fmt"

	"krak/internal/cluster"
	"krak/internal/core"
	"krak/internal/experiments"
	"krak/internal/hydro"
	"krak/internal/mesh"
	"krak/internal/partition"
	"krak/internal/stats"
	"krak/internal/textplot"
)

// Session binds a Machine to a Scenario and answers the paper's
// questions: Predict (analytic model), Simulate (the discrete-event
// "measured" platform), RunHydro (the actual mini-app), Partition
// (partition quality), and Experiment (regenerate a paper artifact).
type Session struct {
	m  *Machine
	sc *Scenario
}

// NewSession binds a machine and a scenario.
func NewSession(m *Machine, sc *Scenario) (*Session, error) {
	if m == nil {
		return nil, fmt.Errorf("%w: nil machine", ErrBadOption)
	}
	if sc == nil {
		return nil, fmt.Errorf("%w: nil scenario", ErrBadOption)
	}
	return &Session{m: m, sc: sc}, nil
}

// deck resolves the scenario's deck through the machine's artifact store,
// so standard and custom sizes alike are built once and shared across
// sessions, sweep points, and server requests.
func (s *Session) deck() (*mesh.Deck, error) {
	if s.sc.parsed != nil {
		return s.sc.parsed, nil
	}
	if s.sc.custom {
		d, err := s.m.env.CustomDeck(s.sc.w, s.sc.h)
		if err != nil {
			return nil, modelErr("custom deck", err)
		}
		return d, nil
	}
	d, err := s.m.env.Deck(s.sc.deckSize)
	if err != nil {
		return nil, modelErr("deck", err)
	}
	return d, nil
}

// partitionSummary resolves the scenario's partition through the machine's
// artifact store — every partitioner, not just the default multilevel one,
// is cached per (deck, algorithm, seed, PE count).
func (s *Session) partitionSummary(d *mesh.Deck) (*mesh.PartitionSummary, error) {
	if s.sc.partitioner == "multilevel" {
		sum, err := s.m.env.Partition(d, s.sc.pe)
		if err != nil {
			return nil, modelErr("partition", err)
		}
		return sum, nil
	}
	pr, err := partitionerByName(s.sc.partitioner, s.m.env.Seed)
	if err != nil {
		return nil, err
	}
	sum, serr := s.m.env.SummaryFor(d, pr, s.sc.pe)
	if serr != nil {
		return nil, modelErr("partition summary", serr)
	}
	return sum, nil
}

func (s *Session) iterations() int {
	if s.sc.iterations > 0 {
		return s.sc.iterations
	}
	return s.m.Repeats()
}

// Predict evaluates the scenario's analytic model variant and returns a
// KindPredict result with the per-phase compute/P2P/collective split.
func (s *Session) Predict() (*Result, error) {
	d, err := s.deck()
	if err != nil {
		return nil, err
	}
	var pred *core.Prediction
	switch s.sc.model {
	case GeneralHomogeneous, GeneralHeterogeneous:
		cal, err := s.m.env.ContrivedCalibration()
		if err != nil {
			return nil, modelErr("contrived calibration", err)
		}
		mode := core.Homogeneous
		if s.sc.model == GeneralHeterogeneous {
			mode = core.Heterogeneous
		}
		pred, err = core.NewGeneral(cal, s.m.env.Net, mode).Predict(d.Mesh.NumCells(), s.sc.pe)
		if err != nil {
			return nil, modelErr("general prediction", err)
		}
	case MeshSpecific:
		cal, err := s.m.deckCalibration(d, s.sc.calPEs)
		if err != nil {
			return nil, err
		}
		sum, err := s.partitionSummary(d)
		if err != nil {
			return nil, err
		}
		p, perr := core.NewMeshSpecific(cal, s.m.env.Net).Predict(sum)
		if perr != nil {
			return nil, modelErr("mesh-specific prediction", perr)
		}
		pred = p
	default:
		return nil, fmt.Errorf("%w: %v", ErrUnknownModel, s.sc.model)
	}

	res := &Result{
		Kind:           KindPredict,
		Deck:           d.Name,
		Cells:          d.Mesh.NumCells(),
		PEs:            s.sc.pe,
		Network:        s.m.NetworkName(),
		Model:          s.sc.model.String(),
		TotalSeconds:   pred.Total,
		ComputeSeconds: pred.Compute(),
		CommSeconds:    pred.Communication(),
	}
	for i := range pred.PhaseCompute {
		res.Phases = append(res.Phases, PhaseBreakdown{
			Phase:        i + 1,
			Compute:      pred.PhaseCompute[i],
			PointToPoint: pred.PhaseP2P[i],
			Collective:   pred.PhaseCollective[i],
			Comm:         pred.PhaseP2P[i] + pred.PhaseCollective[i],
			Total:        pred.PhaseTotal(i + 1),
		})
	}
	return res, nil
}

// Simulate runs the cluster simulator for the scenario's iteration count
// and returns a KindSimulate result: the first iteration's per-phase
// breakdown plus mean/min/max statistics over all iterations.
func (s *Session) Simulate() (*Result, error) {
	d, err := s.deck()
	if err != nil {
		return nil, err
	}
	sum, err := s.partitionSummary(d)
	if err != nil {
		return nil, err
	}
	cfg := cluster.Config{
		Net:            s.m.env.Net,
		Costs:          s.m.env.Costs,
		SerializeSends: s.m.serialize,
	}
	n := s.iterations()
	results, mean, simErr := cluster.SimulateIterations(sum, cfg, n)
	if simErr != nil {
		return nil, modelErr("cluster simulation", simErr)
	}

	r0 := results[0]
	res := &Result{
		Kind:         KindSimulate,
		Deck:         d.Name,
		Cells:        d.Mesh.NumCells(),
		PEs:          s.sc.pe,
		Network:      s.m.NetworkName(),
		TotalSeconds: mean,
		Partition: &PartitionReport{
			Algorithm:    s.sc.partitioner,
			EdgeCut:      sum.EdgeCut(),
			Imbalance:    sum.Imbalance(),
			MaxNeighbors: sum.MaxNeighbors(),
		},
	}
	times := make([]float64, 0, len(results))
	for _, r := range results {
		times = append(times, r.IterationTime)
	}
	res.Iterations = &IterationStats{
		Count:             n,
		MeanSeconds:       mean,
		MinSeconds:        stats.Min(times),
		MaxSeconds:        stats.Max(times),
		CollectiveSeconds: r0.CollectiveTime,
	}
	for ph := range r0.PhaseTimes {
		maxComp := stats.Max(r0.ComputeTimes[ph])
		res.Phases = append(res.Phases, PhaseBreakdown{
			Phase:   ph + 1,
			Compute: maxComp,
			Comm:    r0.CommTimes[ph],
			Total:   r0.PhaseTimes[ph],
		})
		res.ComputeSeconds += maxComp
		res.CommSeconds += r0.CommTimes[ph]
	}
	return res, nil
}

// RunHydro executes the Lagrangian hydrodynamics mini-app for the
// scenario's steps on its rank count and returns a KindHydro result with
// physics diagnostics and the per-phase wall-clock profile.
func (s *Session) RunHydro() (*Result, error) {
	d, err := s.deck()
	if err != nil {
		return nil, err
	}
	var diag hydro.Diagnostics
	var timers hydro.PhaseSeconds
	if s.sc.ranks <= 1 {
		st, err := hydro.NewState(d, hydro.Options{})
		if err != nil {
			return nil, modelErr("hydro state", err)
		}
		for i := 0; i < s.sc.steps; i++ {
			if err := hydro.Step(st, hydro.Serial{}, &timers); err != nil {
				return nil, modelErr("hydro step", err)
			}
			if s.sc.progressFn != nil && (i+1)%s.sc.progressEvery == 0 {
				dg := st.Diag()
				s.sc.progressFn(HydroTick{
					Cycle:          dg.Cycle,
					Time:           dg.Time,
					DT:             st.DT,
					BurnedCells:    dg.BurnedCells,
					MaxPressure:    dg.MaxPressure,
					KineticEnergy:  dg.KineticEnergy,
					InternalEnergy: dg.InternalEnergy,
				})
			}
		}
		diag = st.Diag()
	} else {
		part, err := s.m.env.PartitionVector(d, s.sc.ranks)
		if err != nil {
			return nil, modelErr("partition vector", err)
		}
		pr, err := hydro.RunParallel(d, part, s.sc.ranks, s.sc.steps, hydro.Options{})
		if err != nil {
			return nil, modelErr("parallel hydro", err)
		}
		diag, timers = pr.Diag, pr.PhaseSeconds
	}
	return &Result{
		Kind:  KindHydro,
		Deck:  d.Name,
		Cells: d.Mesh.NumCells(),
		Hydro: &HydroReport{
			Ranks:          s.sc.ranks,
			Steps:          s.sc.steps,
			Cycle:          diag.Cycle,
			Time:           diag.Time,
			TotalMass:      diag.TotalMass,
			InternalEnergy: diag.InternalEnergy,
			KineticEnergy:  diag.KineticEnergy,
			EnergyReleased: diag.EnergyReleased,
			BurnedCells:    diag.BurnedCells,
			MaxPressure:    diag.MaxPressure,
			MinVolume:      diag.MinVolume,
			PhaseSeconds:   timers[:],
		},
	}, nil
}

// Partition partitions the scenario's deck with its partitioner and
// returns a KindPartition result: quality metrics, the per-PE material
// table, and (for small grids) the Figure 1 subgrid map.
func (s *Session) Partition() (*Result, error) {
	d, err := s.deck()
	if err != nil {
		return nil, err
	}
	pr, err := partitionerByName(s.sc.partitioner, s.m.env.Seed)
	if err != nil {
		return nil, err
	}
	g, gerr := s.m.env.Graph(d)
	if gerr != nil {
		return nil, modelErr("deck graph", gerr)
	}
	part, verr := s.m.env.VectorFor(d, pr, s.sc.pe)
	if verr != nil {
		return nil, modelErr("partition vector", verr)
	}
	q := partition.QualityOf(pr.Name(), g, part, s.sc.pe)
	sum, serr := s.m.env.SummaryFor(d, pr, s.sc.pe)
	if serr != nil {
		return nil, modelErr("partition summary", serr)
	}

	rep := &PartitionReport{
		Algorithm:    q.Algorithm,
		EdgeCut:      int(q.EdgeCut),
		Imbalance:    q.Imbalance,
		MaxNeighbors: sum.MaxNeighbors(),
	}
	for pe := 0; pe < s.sc.pe; pe++ {
		ghosts := 0
		for _, nb := range sum.NeighborsOf[pe] {
			ghosts += sum.Boundary(pe, nb).GhostNodes
		}
		rep.PerPE = append(rep.PerPE, PEStat{
			PE:         pe,
			Cells:      sum.TotalCells[pe],
			ByMaterial: sum.CellsByMaterial[pe],
			Neighbors:  len(sum.NeighborsOf[pe]),
			GhostNodes: ghosts,
		})
	}
	if d.Mesh.W > 0 && d.Mesh.W <= 200 {
		rep.Map = textplot.GridMap("Subgrid map (characters = PE ids):",
			d.Mesh.W, d.Mesh.H, func(x, y int) int { return part[y*d.Mesh.W+x] })
	}
	return &Result{
		Kind:      KindPartition,
		Deck:      d.Name,
		Cells:     d.Mesh.NumCells(),
		PEs:       s.sc.pe,
		Partition: rep,
	}, nil
}

// experimentResult wraps an internal experiment result as a KindExperiment
// Result.
func experimentResult(r *experiments.Result) *Result {
	return &Result{
		Kind: KindExperiment,
		Experiment: &ExperimentReport{
			ID:     r.ID,
			Title:  r.Title,
			Header: r.Header,
			Rows:   r.Rows,
			Text:   r.Text,
			Notes:  r.Notes,
		},
	}
}

// Experiment regenerates one paper table or figure by registry id (see
// ListExperiments) and returns a KindExperiment result.
func (s *Session) Experiment(id string) (*Result, error) {
	e, err := experiments.Find(id)
	if err != nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownExperiment, id)
	}
	r, err := e.Run(context.Background(), s.m.env)
	if err != nil {
		return nil, fmt.Errorf("%w: experiment %s: %w", ErrModel, id, err)
	}
	return experimentResult(r), nil
}

// Experiments regenerates the paper tables and figures with the given ids
// (nil means every registry entry, in paper order) as concurrent jobs on
// the machine's worker pool, sharing the machine's artifact caches. The
// results come back in ids order and each one is byte-identical to what a
// serial Experiment call produces — parallelism changes only the wall
// clock. The first failing id (in ids order) aborts the batch.
func (s *Session) Experiments(ctx context.Context, ids []string) ([]*Result, error) {
	for _, id := range ids {
		if _, err := experiments.Find(id); err != nil {
			return nil, fmt.Errorf("%w: %q", ErrUnknownExperiment, id)
		}
	}
	rs, err := experiments.RunAll(ctx, s.m.env, ids, s.m.pool)
	if err != nil {
		return nil, modelErr("experiments", err)
	}
	out := make([]*Result, len(rs))
	for i, r := range rs {
		out[i] = experimentResult(r)
	}
	return out, nil
}

// ExperimentInfo identifies one entry of the experiment registry.
type ExperimentInfo struct {
	ID    string `json:"id"`
	Title string `json:"title"`
}

// ListExperiments returns the experiment registry in paper order.
func ListExperiments() []ExperimentInfo {
	out := make([]ExperimentInfo, 0, len(experiments.Registry))
	for _, e := range experiments.Registry {
		out = append(out, ExperimentInfo{ID: e.ID, Title: e.Title})
	}
	return out
}
