package krak

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestExamplesAndCommandsBuild compiles every main under examples/ and
// cmd/ so a façade change cannot silently break them. Each main is built
// individually to pinpoint the offender.
func TestExamplesAndCommandsBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping build smoke test in -short mode")
	}
	gobin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}

	var pkgs []string
	for _, parent := range []string{"examples", "cmd"} {
		entries, err := os.ReadDir(parent)
		if err != nil {
			t.Fatalf("reading %s: %v", parent, err)
		}
		for _, e := range entries {
			if e.IsDir() {
				pkgs = append(pkgs, "./"+filepath.Join(parent, e.Name()))
			}
		}
	}
	if len(pkgs) < 6 {
		t.Fatalf("expected at least 6 mains (5 examples + krak CLI), found %d: %v", len(pkgs), pkgs)
	}

	for _, pkg := range pkgs {
		cmd := exec.Command(gobin, "build", "-o", os.DevNull, pkg)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Errorf("go build %s failed: %v\n%s", pkg, err, out)
		}
	}
}
